"""E25 — the query service under load: admission, shedding, deadlines.

Paper context: Fagin's model prices one query's accesses; a Garlic-style
middleware serves *many* concurrent queries over the same subsystems.
This harness drives :class:`repro.service.QueryService` with an
open-loop workload (arrivals at a target rate, regardless of
completions — the arrival pattern that actually exposes overload) and
measures how the serving layer behaves as offered load crosses the
knee:

* a **saturation sweep**: offered QPS levels from well under capacity
  to well past it; per level, admitted/rejected/shed/degraded counts,
  completed-latency p50/p95/p99, and *goodput* (non-degraded completes
  per second of wall-clock);
* the **graceful-degradation check**: beyond the knee (peak-goodput
  level), goodput must hold at >= 80% of the peak while rejections and
  sheds absorb the excess — overload costs the excess arrivals, never
  the admitted work;
* the **deadline check**: every admitted request either completes
  within its end-to-end deadline or comes back explicitly degraded,
  with the overshoot bounded (one access round, measured generously in
  wall-clock);
* a **chaos variant**: the same load over an engine with injected
  subsystem faults (transient errors + latency spikes under a retry
  policy), asserting every ticket still reaches a terminal state —
  nothing hangs, failures surface as degraded results or explicit
  errors.

Results land in BENCH_service.json next to this file.  ``--smoke``
runs a CI-sized load, asserts the zero-shed-while-running invariant
and the report schema, and exits nonzero on any violation (without
touching the committed full-sweep JSON).
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.core.query import Atomic
from repro.errors import AdmissionError
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.faults import FaultProfile
from repro.middleware.list_subsystem import ListSubsystem
from repro.middleware.resilience import (
    MonotonicClock,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.service import QueryService, ServiceConfig, TenantPolicy

K = 10
N = 4000
WORKERS = 4
QUEUE_DEPTH = 64
DEADLINE = 1.0
REQUESTS_PER_LEVEL = 300
SWEEP_QPS = (50, 100, 200, 400, 800, 1600)
SMOKE_QPS = (100, 400)
SMOKE_REQUESTS = 60
GOODPUT_FLOOR = 0.80
# One access round is sub-millisecond on this dataset; under chaos a
# round stretches to retries + latency spikes.  The acceptance bound is
# deliberately generous in wall-clock terms but still catches a hang or
# an unguarded full scan.
ROUND_BOUND_SECONDS = 0.5
OUTPUT = Path(__file__).parent / "BENCH_service.json"

TENANTS = ("gold", "silver", "bronze")


def build_engine(chaos=False):
    """Two ranked lists over N objects (seeded), on a real clock."""
    import random

    rng = random.Random(25)
    engine = MiddlewareEngine(clock=MonotonicClock())
    subsystem = ListSubsystem("qbic")
    subsystem.add_list(
        "Color", "red", {f"img{i}": rng.random() for i in range(N)}
    )
    subsystem.add_list(
        "Shape", "round", {f"img{i}": rng.random() for i in range(N)}
    )
    engine.register(subsystem)
    if chaos:
        engine.configure_resilience(
            ResiliencePolicy(retry=RetryPolicy(max_attempts=4, base_delay=0.001)),
            fault_profile=FaultProfile(
                transient_rate=0.05, latency_rate=0.05, latency=0.01, seed=25
            ),
            clock=MonotonicClock(),
        )
    return engine


def run_level(engine, offered_qps, requests, *, deadline=DEADLINE):
    """One open-loop level: submit at the target rate, then drain."""
    query = Atomic("Color", "red") & Atomic("Shape", "round")
    config = ServiceConfig(
        workers=WORKERS,
        queue_depth=QUEUE_DEPTH,
        default_deadline=deadline,
        tenants={"bronze": TenantPolicy(rate=offered_qps / 2, burst=16.0)},
    )
    interval = 1.0 / offered_qps
    tickets, rejected = [], {"queue-full": 0, "quota": 0, "inflight": 0}
    started = time.monotonic()
    with QueryService(engine, config) as service:
        for index in range(requests):
            target = started + index * interval
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            tenant = TENANTS[index % len(TENANTS)]
            priority = 2 if tenant == "gold" else (1 if tenant == "silver" else 0)
            try:
                tickets.append(
                    service.submit(query, K, tenant=tenant, priority=priority)
                )
            except AdmissionError as error:
                rejected[error.reason] = rejected.get(error.reason, 0) + 1
        for ticket in tickets:
            ticket.wait(timeout=60)
        elapsed = time.monotonic() - started
        stats = service.stats()
    return summarize_level(
        offered_qps, requests, tickets, rejected, stats, elapsed
    )


def summarize_level(offered_qps, requests, tickets, rejected, stats, elapsed):
    latencies, good, overshoots, hung, shed_running = [], 0, [], 0, 0
    for ticket in tickets:
        if not ticket.done():
            hung += 1
            continue
        if ticket.status == "shed":
            if ticket.started_at is not None:
                shed_running += 1
            continue
        if ticket.status != "done":
            continue
        latencies.append(ticket.finished_at - ticket.submitted_at)
        result = ticket.result(timeout=0)
        if result.degraded is None:
            good += 1
        if ticket.deadline_at is not None and (
            ticket.finished_at > ticket.deadline_at
        ):
            # A non-degraded finish past the deadline is legal only
            # within the one-round allowance: the last access landed
            # before the budget ran out and bookkeeping crossed the
            # line.  The max-overshoot assert below bounds both cases.
            overshoots.append(ticket.finished_at - ticket.deadline_at)
    assert hung == 0, f"{hung} admitted tickets never reached a terminal state"
    assert shed_running == 0, f"{shed_running} tickets shed while RUNNING"
    max_overshoot = max(overshoots, default=0.0)
    assert max_overshoot <= ROUND_BOUND_SECONDS, (
        f"deadline overshoot {max_overshoot:.3f}s exceeds the "
        f"one-round bound {ROUND_BOUND_SECONDS}s"
    )

    def percentile(values, fraction):
        if not values:
            return 0.0
        ordered = sorted(values)
        return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

    return {
        "offered_qps": offered_qps,
        "requests": requests,
        "admitted": len(tickets),
        "rejected": rejected,
        "shed": stats["shed"],
        "completed": stats["completed"],
        "degraded": stats["degraded"],
        "expired": stats["expired"],
        "failed": stats["failed"],
        "goodput_qps": round(good / elapsed, 2) if elapsed else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 2),
        "p95_ms": round(percentile(latencies, 0.95) * 1e3, 2),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 2),
        "mean_ms": round(statistics.mean(latencies) * 1e3, 2)
        if latencies
        else 0.0,
        "max_deadline_overshoot_ms": round(max_overshoot * 1e3, 2),
        "elapsed_seconds": round(elapsed, 3),
    }


def graceful_check(levels):
    """Goodput beyond the knee must hold >= GOODPUT_FLOOR of the peak."""
    peak = max(level["goodput_qps"] for level in levels)
    knee = next(
        level["offered_qps"]
        for level in levels
        if level["goodput_qps"] == peak
    )
    floor = GOODPUT_FLOOR * peak
    violations = [
        level["offered_qps"]
        for level in levels
        if level["offered_qps"] > knee and level["goodput_qps"] < floor
    ]
    return {
        "peak_goodput_qps": peak,
        "knee_qps": knee,
        "floor_qps": round(floor, 2),
        "violations": violations,
        "graceful": not violations,
    }


def run_chaos(qps, requests):
    engine = build_engine(chaos=True)
    try:
        level = run_level(engine, qps, requests)
        level["chaos"] = True
        return level
    finally:
        engine.close()


REPORT_SCHEMA = {
    "benchmark": str,
    "config": dict,
    "levels": list,
    "graceful": dict,
    "chaos": dict,
}
LEVEL_SCHEMA = {
    "offered_qps": (int, float),
    "requests": int,
    "admitted": int,
    "rejected": dict,
    "shed": int,
    "completed": int,
    "degraded": int,
    "expired": int,
    "failed": int,
    "goodput_qps": (int, float),
    "p50_ms": (int, float),
    "p95_ms": (int, float),
    "p99_ms": (int, float),
    "mean_ms": (int, float),
    "max_deadline_overshoot_ms": (int, float),
    "elapsed_seconds": (int, float),
}


def validate_report(report):
    """Schema check for BENCH_service.json (CI gates on this)."""
    for field, kind in REPORT_SCHEMA.items():
        assert field in report, f"report missing {field!r}"
        assert isinstance(report[field], kind), (
            f"report[{field!r}] is {type(report[field]).__name__}, "
            f"wanted {kind}"
        )
    assert report["levels"], "report has no levels"
    for level in report["levels"] + [report["chaos"]]:
        for field, kinds in LEVEL_SCHEMA.items():
            assert field in level, f"level missing {field!r}"
            assert isinstance(level[field], kinds), (
                f"level[{field!r}] is {type(level[field]).__name__}"
            )
    assert report["graceful"]["graceful"], (
        f"goodput collapsed past the knee: {report['graceful']}"
    )


def run(sweep, requests, *, smoke=False):
    engine = build_engine()
    try:
        levels = []
        for qps in sweep:
            level = run_level(engine, qps, requests)
            levels.append(level)
            print(
                f"qps {qps:>5}: goodput {level['goodput_qps']:>7.1f}/s  "
                f"p95 {level['p95_ms']:>7.1f}ms  "
                f"admitted {level['admitted']:>4}  "
                f"rejected {sum(level['rejected'].values()):>4}  "
                f"shed {level['shed']:>3}  degraded {level['degraded']:>3}"
            )
    finally:
        engine.close()
    chaos = run_chaos(sweep[len(sweep) // 2], requests)
    print(
        f"chaos @ {chaos['offered_qps']} qps: "
        f"completed {chaos['completed']}  degraded {chaos['degraded']}  "
        f"failed {chaos['failed']}  p95 {chaos['p95_ms']:.1f}ms"
    )
    report = {
        "benchmark": "e25-service",
        "config": {
            "n": N,
            "k": K,
            "workers": WORKERS,
            "queue_depth": QUEUE_DEPTH,
            "deadline_seconds": DEADLINE,
            "requests_per_level": requests,
            "smoke": smoke,
        },
        "levels": levels,
        "graceful": graceful_check(levels),
        "chaos": chaos,
    }
    validate_report(report)
    print(f"graceful degradation: {report['graceful']}")
    if smoke:
        # CI-sized run: invariants and schema asserted above; keep the
        # committed full-sweep BENCH_service.json untouched.
        print("service smoke OK")
    else:
        OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"written: {OUTPUT}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: two levels, invariants + schema asserted",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run(SMOKE_QPS, SMOKE_REQUESTS, smoke=True)
    return run(SWEEP_QPS, REQUESTS_PER_LEVEL)


if __name__ == "__main__":
    sys.exit(main())
