"""E13 — the dimensionality curse (section 2.1).

Paper claims: grid files and linear quadtrees "grow exponentially with
the dimensionality"; R-trees "tend to be more robust for higher
dimensions, at least for dimensions up to around 20".

Regenerates: R-tree vs linear-scan distance evaluations over dimension,
plus the grid-file directory size (refused past the tractability bound).
Expected shape: the R-tree's share of the scan's work grows with
dimension (its advantage decays); the grid directory explodes.
"""

import numpy as np

from repro.harness.experiments import e13_curse
from repro.harness.reporting import format_table
from repro.index.rtree import RTree


def test_e13_dimensionality_curse(benchmark):
    result = e13_curse(dims=(2, 4, 8, 16, 32), n=2000, k=10, queries=5)
    print()
    print(format_table(result.headers, result.rows))

    rtree_shares = [row[4] for row in result.rows]
    # the R-tree's advantage decays monotonically-ish: last >> first
    assert rtree_shares[-1] > 4 * rtree_shares[0]
    assert rtree_shares[0] < 0.4  # a real win at low dimension
    # the VA-file degrades gracefully: still well below the scan at the
    # dimensions where the R-tree has already lost
    vafile_shares = {row[0]: row[5] for row in result.rows}
    assert vafile_shares[16] < 0.5
    assert vafile_shares[32] < 0.8
    # grid directory: exponential growth, then refusal (-1)
    directories = [row[6] for row in result.rows]
    assert directories[0] < directories[1] < directories[2]
    assert directories[-1] == -1

    rng = np.random.default_rng(19)
    points = rng.random((2000, 8))
    tree = RTree.bulk_load([(i, points[i]) for i in range(2000)], 8)
    query = rng.random(8)

    def run():
        return tree.knn(query, 10)

    benchmark(run)
