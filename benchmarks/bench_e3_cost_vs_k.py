"""E3 — A0 cost scaling vs the answer count k.

Paper claim (Theorem 4.1): the k-dependence is k^{1/m}; at m = 2 that is
sqrt(k) — quadrupling k should roughly double the cost.

Regenerates: cost over k at fixed N, log-log slope vs 1/m.
"""

from repro.core.fagin import fagin_top_k
from repro.core.sources import sources_from_columns
from repro.harness.experiments import e3_cost_vs_k
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent


def test_e3_cost_vs_k(benchmark):
    result = e3_cost_vs_k(ks=(1, 4, 16, 64, 256), n=8000, seeds=(0, 1, 2))
    print()
    print(format_table(result.headers, result.rows))
    for note in result.notes:
        print(note)

    fit = result.fits["k"]
    assert 0.3 <= fit.slope <= 0.7, fit
    # cost is increasing in k
    costs = [row[1] for row in result.rows]
    assert costs == sorted(costs)

    table = independent(8000, 2, seed=0)

    def run():
        return fagin_top_k(sources_from_columns(table), tnorms.MIN, 64)

    benchmark(run)
