"""E8 — weighted queries (section 5).

Paper claim: the Fagin–Wimmers formula satisfies D1–D3', inherits
monotonicity and strictness, and therefore "algorithm A0 continues to be
correct and optimal in the weighted case".

Regenerates: correctness + cost table over a weight sweep (the weighted
cost stays in the same regime as the unweighted min run).
"""

from repro.core.fagin import fagin_top_k
from repro.core.sources import sources_from_columns
from repro.harness.experiments import e8_weighted
from repro.harness.reporting import format_table
from repro.scoring.tnorms import MIN
from repro.scoring.weighted import WeightedScoring
from repro.workloads.graded_lists import independent


def test_e8_weighted_queries(benchmark):
    result = e8_weighted(n=4000, k=10, seed=11)
    print()
    print(format_table(result.headers, result.rows))
    for note in result.notes:
        print(note)

    for weights, weighted_cost, min_cost, correct in result.rows:
        assert correct, weights
        # same cost regime: within an order of magnitude of plain min
        assert weighted_cost < 10 * min_cost

    table = independent(4000, 2, seed=11)
    rule = WeightedScoring(MIN, (2 / 3, 1 / 3))

    def run():
        return fagin_top_k(sources_from_columns(table), rule, 10)

    benchmark(run)
