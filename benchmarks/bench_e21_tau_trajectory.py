"""E21 — the TA threshold's descent toward the kth grade, observed.

Paper context (§4.2, Theorem 4.4): TA halts as soon as k buffered
objects have overall grade at least the threshold tau = t(b_1,...,b_m)
computed from the bottom grades of the sorted streams.  The
observability layer makes that argument visible: the algorithm samples
``ta.tau`` and ``ta.kth_grade`` once per round into the tracer's
metrics registry, so the trajectory — tau monotonically descending, the
kth grade climbing, the run stopping at the first crossing — comes
straight from the recorded run rather than from ad-hoc printf probes.

Acceptance: tau is nonincreasing across every round, the run stops with
kth grade >= tau, and the traced access tally equals the reported
uniform cost exactly.  The trajectory (downsampled) and the invariant
checks are written to BENCH_tau.json next to this file.
"""

import json
from pathlib import Path

from repro.core.sources import sources_from_columns
from repro.core.threshold import threshold_top_k
from repro.harness.experiments import e21_tau_trajectory
from repro.harness.reporting import format_table
from repro.observability import MetricsRegistry, QueryTracer, validate_trace
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent

N, M, K, SEED = 20_000, 3, 10, 21
OUTPUT = Path(__file__).parent / "BENCH_tau.json"


def test_e21_tau_trajectory(benchmark):
    table = independent(N, M, seed=SEED)
    tracer = QueryTracer(metrics=MetricsRegistry())
    result = threshold_top_k(
        sources_from_columns(table), tnorms.MIN, K, tracer=tracer
    )
    validate_trace(tracer.as_dict())

    taus = [value for _, value in tracer.samples("ta.tau")]
    kths = [value for _, value in tracer.samples("ta.kth_grade")]
    assert taus, "TA must sample ta.tau every round"
    assert all(a >= b for a, b in zip(taus, taus[1:])), "tau must descend"
    assert kths and kths[-1] >= taus[-1], "stop requires kth grade >= tau"
    traced = sum(s + r for s, r in tracer.access_counts().values())
    assert traced == result.database_access_cost

    payload = {
        "experiment": "E21",
        "n": N,
        "m": M,
        "k": K,
        "seed": SEED,
        "rounds": len(taus),
        "uniform_cost": result.database_access_cost,
        "traced_accesses": traced,
        "tau_first": taus[0],
        "tau_final": taus[-1],
        "kth_final": kths[-1],
        "tau_nonincreasing": True,
        "trajectory": [
            {"round": i + 1, "tau": taus[i], "kth": kths[i] if i < len(kths) else None}
            for i in range(0, len(taus), max(1, len(taus) // 24))
        ],
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    small = e21_tau_trajectory(n=2000, m=M, k=K)
    print()
    print(format_table(small.headers, small.rows))
    for note in small.notes:
        print(note)
    print(f"(wrote {OUTPUT.name})")

    # The smaller harness experiment doubles as the timed benchmark body.
    benchmark(lambda: e21_tau_trajectory(n=2000, m=M, k=K))
