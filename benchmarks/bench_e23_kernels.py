"""E23 — vectorized kernels: columnar numpy hot paths vs scalar loops.

Paper context (§4): the algorithms' correctness arguments fix *which*
accesses are made and *when* the stop test fires; nothing fixes how the
bookkeeping between accesses is computed.  This benchmark measures the
wall-clock value of doing that bookkeeping columnar (``repro.kernels``):
TA and NRA top-10 over N=100k objects, m=3 independent ArraySource
lists, ``--kernel vector`` vs ``--kernel scalar``.

Acceptance:

* >= 4x wall-clock speedup (best-of interleaved repeats) for both TA
  and NRA on the vector kernel;
* byte-identical answers, access costs, sorted depths, and traces
  across kernels and across ``max_workers`` in {1, 4};
* a ``__slots__`` note quantifying the satellite change to
  :class:`~repro.core.graded.GradedItem` (per-instance memory vs an
  equivalent ``__dict__``-backed dataclass).

Results are written to BENCH_kernels.json next to this file.  Run
``python benchmarks/bench_e23_kernels.py --smoke`` for the CI-sized
standalone check (tiny N, parity assertions only, no timing gates).
"""

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.sources import sources_from_columns
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.harness.reporting import format_table
from repro.observability import QueryTracer
from repro.parallel import ParallelAccessExecutor
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent

N, M, K, SEED = 100_000, 3, 10, 23
REPEATS = 5
SMOKE_N = 400
SPEEDUP_FLOOR = 4.0
SLOTS_SAMPLE = 50_000
OUTPUT = Path(__file__).parent / "BENCH_kernels.json"

ALGORITHMS = (
    ("ta", threshold_top_k, {"batch_size": 128}),
    ("nra", nra_top_k, {"batch_size": 4096}),
)


def key(result):
    return [(item.object_id, item.grade) for item in result.answers]


def run(sources, algo, kwargs, kernel, tracer=None, executor=None):
    return algo(
        sources, tnorms.MIN, K, kernel=kernel, tracer=tracer,
        executor=executor, **kwargs,
    )


def timed_sweep(sources, algo, kwargs):
    """Best-of timing, scalar and vector interleaved within each repeat
    so background load drift hits both kernels equally."""
    best = {"scalar": float("inf"), "vector": float("inf")}
    results = {}
    for _ in range(REPEATS):
        for kernel in ("scalar", "vector"):
            started = time.perf_counter()
            results[kernel] = run(sources, algo, kwargs, kernel)
            best[kernel] = min(best[kernel], time.perf_counter() - started)
    return best, results


def assert_parity(name, sources, algo, kwargs):
    """Traced parity across kernel x workers {1, 4}: identical answers,
    charges, depths, and byte-identical traces."""
    baseline = baseline_trace = None
    for kernel in ("scalar", "vector"):
        for workers in (1, 4):
            tracer = QueryTracer()
            with ParallelAccessExecutor(workers) as executor:
                result = run(
                    sources, algo, kwargs, kernel,
                    tracer=tracer, executor=executor,
                )
            trace = tracer.to_json()
            label = f"{name}/{kernel}/workers={workers}"
            if baseline is None:
                baseline, baseline_trace = result, trace
                continue
            assert key(result) == key(baseline), label
            assert result.cost == baseline.cost, label
            assert result.sorted_depth == baseline.sorted_depth, label
            assert trace == baseline_trace, label
    # the untraced vector path (TA's bulk super-round) agrees too
    untraced = run(sources, algo, kwargs, "vector")
    assert key(untraced) == key(baseline), f"{name}/untraced"
    assert untraced.cost == baseline.cost, f"{name}/untraced"
    return baseline


@dataclass(frozen=True)
class _DictItem:
    """What GradedItem would be without __slots__ (satellite baseline)."""

    object_id: object
    grade: float


def slots_note():
    """Per-instance memory for slotted GradedItem vs the __dict__ shape,
    plus bulk construction time at SLOTS_SAMPLE items."""
    from repro.core.graded import GradedItem

    slotted = GradedItem("object-000001", 0.5)
    dicted = _DictItem("object-000001", 0.5)
    slotted_bytes = sys.getsizeof(slotted)
    dicted_bytes = sys.getsizeof(dicted) + sys.getsizeof(dicted.__dict__)

    started = time.perf_counter()
    items = [GradedItem(f"o{i}", (i % 100) / 100.0) for i in range(SLOTS_SAMPLE)]
    slotted_seconds = time.perf_counter() - started
    del items
    started = time.perf_counter()
    items = [_DictItem(f"o{i}", (i % 100) / 100.0) for i in range(SLOTS_SAMPLE)]
    dicted_seconds = time.perf_counter() - started
    del items
    return {
        "slotted_bytes_per_item": slotted_bytes,
        "dict_bytes_per_item": dicted_bytes,
        "memory_savings": round(1.0 - slotted_bytes / dicted_bytes, 3),
        "construct_n": SLOTS_SAMPLE,
        "slotted_construct_seconds": round(slotted_seconds, 4),
        "dict_construct_seconds": round(dicted_seconds, 4),
    }


def smoke(n=SMOKE_N):
    """Tiny-N parity check for CI: vector and scalar must agree on
    answers, costs, and traces for TA and NRA.  No timing gates."""
    sources = sources_from_columns(independent(n, M, seed=SEED))
    for name, algo, kwargs in ALGORITHMS:
        assert_parity(name, sources, algo, kwargs)
    print(f"kernel smoke OK: TA and NRA agree across kernels at N={n}")


def test_e23_kernels(benchmark):
    table = independent(N, M, seed=SEED)
    sources = sources_from_columns(table)

    rows = []
    sweep = {}
    for name, algo, kwargs in ALGORITHMS:
        best, results = timed_sweep(sources, algo, kwargs)
        assert key(results["vector"]) == key(results["scalar"]), name
        assert results["vector"].cost == results["scalar"].cost, name
        assert results["vector"].sorted_depth == results["scalar"].sorted_depth
        speedup = best["scalar"] / best["vector"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"{name}: expected >= {SPEEDUP_FLOOR}x vector over scalar, got "
            f"{speedup:.1f}x ({best['scalar']:.3f}s vs {best['vector']:.3f}s)"
        )
        parity = assert_parity(name, sources, algo, kwargs)
        sweep[name] = {
            "scalar_seconds": round(best["scalar"], 4),
            "vector_seconds": round(best["vector"], 4),
            "speedup": round(speedup, 2),
            "uniform_cost": parity.database_access_cost,
            "sorted_depth": parity.sorted_depth,
        }
        rows.append(
            (name, sweep[name]["scalar_seconds"], sweep[name]["vector_seconds"],
             sweep[name]["speedup"], sweep[name]["uniform_cost"])
        )

    slots = slots_note()
    payload = {
        "experiment": "E23",
        "workload": {"n": N, "m": M, "k": K, "seed": SEED, "rule": "min",
                     "backend": "array", "repeats": REPEATS},
        "kernels": sweep,
        "slots": slots,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(format_table(
        ("algorithm", "scalar_s", "vector_s", "speedup", "cost"), rows
    ))
    print(
        f"GradedItem __slots__: {slots['slotted_bytes_per_item']}B/item vs "
        f"{slots['dict_bytes_per_item']}B without "
        f"({slots['memory_savings']:.0%} smaller); wrote {OUTPUT.name}"
    )

    # The timed body: one vectorized TA round-trip on the full workload.
    benchmark(lambda: threshold_top_k(sources, tnorms.MIN, K, kernel="vector"))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"parity assertions only, at N={SMOKE_N} (CI-sized; "
        "no timing gates, no JSON output)",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
    else:
        print("full run is pytest-driven: "
              "python -m pytest benchmarks/bench_e23_kernels.py --benchmark-enable")
        smoke(N // 50)
