"""E26 — the semantic result cache under a Zipf query mix.

Paper context: Fagin's model prices one query in isolation; production
middleware answers a *stream* in which a few queries dominate (the
classic Zipf popularity curve).  The semantic cache converts that skew
into savings with certified reuse — exact replay, prefix slicing under
the recorded tau, and NRA warm-starts for deeper k — so the interesting
measurements are end-to-end:

* a **skew sweep**: the same request stream drawn at Zipf exponents
  0.0 (uniform) through 1.5, replayed against a cache-off and a
  cache-on engine; per level, the tier mix, the hit rate, the median
  and p95 per-request latency of both engines, and the total access
  counts;
* the **conformance gate**: every cached answer is checked against the
  cache-off engine's answer for the same query — grade multisets must
  match exactly (the paper's top-k invariant); the report records the
  number of deltas, which must be zero everywhere;
* the **win check**: at Zipf 1.0 the cached engine's median latency
  must beat cold by >= 5x (hits are O(k) dictionary work versus a real
  NRA run).

Results land in BENCH_cache.json next to this file.  ``--smoke`` runs
a CI-sized stream, asserts zero conformance deltas and a positive hit
rate, and exits nonzero on any violation (without touching the
committed full-sweep JSON).
"""

import argparse
import itertools
import json
import random
import statistics
import sys
import time
from pathlib import Path

from repro.core.planner import Strategy
from repro.core.query import Atomic
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.list_subsystem import ListSubsystem

N = 4000
LISTS = 5
REQUESTS = 400
SMOKE_N = 400
SMOKE_REQUESTS = 80
KS = (5, 10, 20)
SWEEP_S = (0.0, 0.5, 1.0, 1.5)
SPEEDUP_FLOOR = 5.0
OUTPUT = Path(__file__).parent / "BENCH_cache.json"


def build_engine(n):
    rng = random.Random(26)
    engine = MiddlewareEngine()
    subsystem = ListSubsystem("lists")
    for column in range(LISTS):
        subsystem.add_list(
            f"c{column}", "x", {f"o{i:05d}": rng.random() for i in range(n)}
        )
    engine.register(subsystem)
    return engine


def query_pool():
    """Every 2-subset of the lists, conjoined: 10 distinct plans."""
    return [
        Atomic(f"c{a}", "x") & Atomic(f"c{b}", "x")
        for a, b in itertools.combinations(range(LISTS), 2)
    ]


def zipf_ranks(count, exponent, size, rng):
    """``size`` pool indices drawn with P(rank r) ~ 1/r^s."""
    weights = [1.0 / (rank + 1) ** exponent for rank in range(count)]
    return rng.choices(range(count), weights=weights, k=size)


def make_stream(exponent, requests, rng):
    """The request stream: (pool index, k) pairs, Zipf over the pool."""
    ranks = zipf_ranks(len(query_pool()), exponent, requests, rng)
    return [(rank, rng.choice(KS)) for rank in ranks]


def grade_multiset(result):
    return sorted(item.grade for item in result.answers)


def replay(engine, pool, stream, *, reference=None):
    """Run the stream; return latencies, tier counts, conformance deltas.

    ``reference`` maps (pool index, k) -> the cache-off grade multiset;
    when given, every response is gated against it.
    """
    latencies, tiers, deltas = [], {}, 0
    answers = {}
    for index, k in stream:
        started = time.perf_counter()
        result = engine.top_k(pool[index], k=k, prefer=Strategy.NRA)
        latencies.append(time.perf_counter() - started)
        tier = (result.extras.get("cache") or {}).get("tier", "cold")
        tiers[tier] = tiers.get(tier, 0) + 1
        key = (index, k)
        if key not in answers:
            answers[key] = grade_multiset(result)
        if reference is not None and grade_multiset(result) != reference[key]:
            deltas += 1
    return latencies, tiers, deltas, answers


def percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def run_level(exponent, n, requests):
    pool = query_pool()
    rng = random.Random(int(exponent * 1000) + 7)
    stream = make_stream(exponent, requests, rng)

    cold_engine = build_engine(n)
    try:
        cold_latencies, _, _, reference = replay(cold_engine, pool, stream)
    finally:
        cold_engine.close()

    cached_engine = build_engine(n)
    cache = cached_engine.configure_cache()
    try:
        latencies, tiers, deltas, _ = replay(
            cached_engine, pool, stream, reference=reference
        )
        stats = cache.stats()
    finally:
        cached_engine.close()

    served = stats["hits"] + stats["warm_hits"]
    cold_median = statistics.median(cold_latencies)
    cached_median = statistics.median(latencies)
    return {
        "zipf_s": exponent,
        "requests": requests,
        "tiers": tiers,
        "hit_rate": round(served / requests, 4),
        "conformance_deltas": deltas,
        "cache_stats": stats,
        "cold_median_ms": round(cold_median * 1e3, 4),
        "cold_p95_ms": round(percentile(cold_latencies, 0.95) * 1e3, 4),
        "cached_median_ms": round(cached_median * 1e3, 4),
        "cached_p95_ms": round(percentile(latencies, 0.95) * 1e3, 4),
        "median_speedup": round(cold_median / cached_median, 2)
        if cached_median
        else float("inf"),
    }


REPORT_SCHEMA = {"benchmark": str, "config": dict, "levels": list}
LEVEL_SCHEMA = {
    "zipf_s": (int, float),
    "requests": int,
    "tiers": dict,
    "hit_rate": (int, float),
    "conformance_deltas": int,
    "cache_stats": dict,
    "cold_median_ms": (int, float),
    "cold_p95_ms": (int, float),
    "cached_median_ms": (int, float),
    "cached_p95_ms": (int, float),
    "median_speedup": (int, float),
}


def validate_report(report, *, smoke):
    for field, kind in REPORT_SCHEMA.items():
        assert field in report, f"report missing {field!r}"
        assert isinstance(report[field], kind), field
    assert report["levels"], "report has no levels"
    for level in report["levels"]:
        for field, kinds in LEVEL_SCHEMA.items():
            assert field in level, f"level missing {field!r}"
            assert isinstance(level[field], kinds), field
        assert level["conformance_deltas"] == 0, (
            f"cache served a wrong answer at zipf_s={level['zipf_s']}: "
            f"{level['conformance_deltas']} deltas"
        )
        assert level["hit_rate"] > 0.0, "the stream never hit the cache"
    if not smoke:
        hot = next(
            level for level in report["levels"] if level["zipf_s"] == 1.0
        )
        assert hot["median_speedup"] >= SPEEDUP_FLOOR, (
            f"median speedup {hot['median_speedup']}x at Zipf(1.0) is "
            f"below the {SPEEDUP_FLOOR}x floor"
        )


def run(sweep, n, requests, *, smoke=False):
    levels = []
    for exponent in sweep:
        level = run_level(exponent, n, requests)
        levels.append(level)
        print(
            f"zipf {exponent:>4}: hit rate {level['hit_rate']:>6.1%}  "
            f"median {level['cold_median_ms']:>8.3f}ms -> "
            f"{level['cached_median_ms']:>8.3f}ms "
            f"({level['median_speedup']:>6.2f}x)  "
            f"tiers {level['tiers']}  deltas {level['conformance_deltas']}"
        )
    report = {
        "benchmark": "e26-cache",
        "config": {
            "n": n,
            "lists": LISTS,
            "pool": len(query_pool()),
            "ks": list(KS),
            "requests_per_level": requests,
            "smoke": smoke,
        },
        "levels": levels,
    }
    validate_report(report, smoke=smoke)
    if smoke:
        print("cache smoke OK")
    else:
        OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"written: {OUTPUT}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized stream: conformance + hit-rate asserted, no JSON",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run((0.0, 1.0), SMOKE_N, SMOKE_REQUESTS, smoke=True)
    return run(SWEEP_S, N, REQUESTS)


if __name__ == "__main__":
    sys.exit(main())
