"""Legacy shim so `pip install -e . --no-use-pep517` works offline
(the environment has setuptools but no `wheel`, which PEP 660 editable
installs require).  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
