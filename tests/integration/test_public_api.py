"""The public API surface: every advertised name resolves and works."""

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.core",
    "repro.scoring",
    "repro.middleware",
    "repro.multimedia",
    "repro.index",
    "repro.sql",
    "repro.workloads",
    "repro.harness",
)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", ()):
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_is_exposed():
    import repro

    assert repro.__version__


def test_readme_quickstart_snippet_runs():
    from repro import ListSource, fagin_top_k, scoring

    color = ListSource({"a": 0.9, "b": 0.6, "c": 0.3}, name="Color=red")
    shape = ListSource({"a": 0.5, "b": 0.8, "c": 0.4}, name="Shape=round")
    result = fagin_top_k([color, shape], scoring.MIN, k=2)
    answers = {item.object_id: item.grade for item in result.answers}
    assert answers == {"b": 0.6, "a": 0.5}


def test_three_subsystem_conjunction():
    """Relational + QBIC + video, one query — the full Garlic picture."""
    from repro.core.query import Atomic
    from repro.middleware.engine import MiddlewareEngine
    from repro.middleware.relational import RelationalSubsystem
    from repro.multimedia.qbic import QbicSubsystem
    from repro.multimedia.video import VideoGenerator, VideoSubsystem
    from repro.workloads.image_corpus import mixed_corpus

    n = 25
    images = mixed_corpus(n, seed=1)
    clips = VideoGenerator(2).corpus(n, still_fraction=0.4, prefix="obj")
    # unify object ids: objN for everything
    from repro.multimedia.images import SyntheticImage

    images = [
        SyntheticImage(f"obj{i}", img.background, img.shapes)
        for i, img in enumerate(images)
    ]
    rows = {f"obj{i}": {"Category": "promo" if i % 2 else "stock"} for i in range(n)}

    engine = MiddlewareEngine()
    engine.register(RelationalSubsystem("meta", rows))
    engine.register(QbicSubsystem("qbic", images))
    engine.register(VideoSubsystem("video", clips))

    query = (
        Atomic("Category", "promo")
        & Atomic("Color", "red")
        & Atomic("MotionEnergy", "still")
    )
    result = engine.top_k(query, 5)
    assert len(result.answers) == 5
    # nonzero answers satisfy the crisp predicate
    for item in result.answers:
        if item.grade > 0:
            assert rows[item.object_id]["Category"] == "promo"
