"""End-to-end runs of the paper's own worked examples.

Each test stages one scenario from the text and checks the paper's
stated behaviour — these are the closest thing a survey has to
"reproducing the figures".
"""

import pytest

from repro.core.adversary import expected_best_object, hard_instance
from repro.core.fagin import fagin_top_k
from repro.core.naive import grade_everything
from repro.core.planner import Strategy
from repro.core.query import Atomic, Weighted
from repro.core.sources import sources_from_columns
from repro.scoring import means, tnorms
from repro.sql.compiler import execute
from repro.workloads.cd_store import build_store, generate_catalog
from repro.workloads.graded_lists import independent


def test_beatles_example_section_4_1():
    """'(Artist='Beatles') AND (AlbumColor='red')': only albums by the
    Beatles get nonzero grades, and among those, redder covers rank
    higher; the strategy touches roughly |S| * m objects."""
    catalog = generate_catalog(1000, seed=1, beatles_fraction=0.03)
    engine = build_store(catalog)
    query = Atomic("Artist", "Beatles") & Atomic("AlbumColor", "red")
    plan = engine.explain(query, 10)
    assert plan.strategy is Strategy.BOOLEAN_FIRST
    result = engine.top_k(query, 10)
    beatles = {a.album_id for a in catalog if a.artist == "Beatles"}
    # (a) nonzero grades only for Beatles albums
    assert all(
        item.object_id in beatles for item in result.answers if item.grade > 0
    )
    # (b) grades equal the color grade (min(1, g) = g)
    color = engine.bind(Atomic("AlbumColor", "red")).as_graded_set()
    for item in result.answers:
        if item.grade > 0:
            assert item.grade == pytest.approx(color[item.object_id])
    # cost tracks |S|, far below the naive 2N = 2000
    assert result.database_access_cost < 200


def test_red_and_round_example_section_3():
    """'(Color='red') AND (Shape='round')' with two fuzzy subsystems:
    A0 returns the min-rule top-k at sublinear cost."""
    table = independent(4000, 2, seed=2)
    sources = sources_from_columns(table, names=("Color=red", "Shape=round"))
    result = fagin_top_k(sources, tnorms.MIN, 10)
    expected = grade_everything(sources, tnorms.MIN).top(10)
    assert result.answers.same_grade_multiset(expected)
    assert result.database_access_cost < 2 * 4000 / 4


def test_min_of_zero_and_one_grades_section_4_1():
    """'If the artist is not the Beatles, then the grade is 0 (the
    minimum of 0 and any grade is 0).  If the artist is the Beatles,
    the grade is the QBIC grade (the minimum of 1 and g is g).'"""
    assert tnorms.MIN((0.0, 0.73)) == 0.0
    assert tnorms.MIN((1.0, 0.73)) == 0.73


def test_twice_as_much_about_color_section_5():
    """'If we care twice as much about the color as the shape, then we
    would take theta_1 = 2/3 and theta_2 = 1/3' — and with the min rule
    the Fagin-Wimmers score is (1/3) min-prefix + (2/3) min-pair."""
    table = independent(500, 2, seed=3)
    sources = sources_from_columns(table)
    weighted = Weighted(
        (Atomic("A1", 1), Atomic("A2", 1)), (2 / 3, 1 / 3)
    )
    from repro.core.evaluation import compile_query

    rule = compile_query(weighted)
    result = fagin_top_k(sources, rule, 10)
    expected = grade_everything(sources, rule).top(10)
    assert result.answers.same_grade_multiset(expected)
    # spot-check the formula against the text
    assert rule((0.9, 0.6)) == pytest.approx((1 / 3) * 0.9 + (2 / 3) * 0.6)


def test_indifferent_weights_recover_min_section_5():
    """'If we weight them equally ... we use the underlying rule.'"""
    from repro.scoring.weighted import weighted_score

    assert weighted_score(tnorms.MIN, (0.5, 0.5), (0.7, 0.4)) == pytest.approx(0.4)


def test_weighted_average_is_theta1_x1_plus_theta2_x2_section_5():
    """'When the scoring function is the average ... simply
    theta_1 x_1 + theta_2 x_2.'"""
    from repro.scoring.weighted import weighted_score

    assert weighted_score(means.MEAN, (0.7, 0.3), (0.4, 0.9)) == pytest.approx(
        0.7 * 0.4 + 0.3 * 0.9
    )


def test_adversarial_case_section_6():
    """'A (somewhat artificial) case where the database access cost is
    necessarily linear in the database size.'"""
    n = 1001
    result = fagin_top_k(hard_instance(n), tnorms.MIN, 1)
    assert result.database_access_cost >= n
    assert result.answers.best().object_id == expected_best_object(n)


def test_sql_form_of_the_running_query():
    engine = build_store(generate_catalog(400, seed=4))
    result = execute(
        "SELECT * FROM albums "
        "WHERE Artist = 'Beatles' AND AlbumColor = 'red' STOP AFTER 10",
        engine,
    )
    assert len(result.answers) == 10


def test_arithmetic_mean_conjunction_section_3():
    """TZZ79: the mean 'performs empirically quite well' and the bounds
    still apply — A0 stays correct under it."""
    table = independent(1000, 2, seed=5)
    sources = sources_from_columns(table)
    result = fagin_top_k(sources, means.MEAN, 10)
    expected = grade_everything(sources, means.MEAN).top(10)
    assert result.answers.same_grade_multiset(expected)
    assert result.database_access_cost < 2 * 1000
