"""Failure injection: misbehaving subsystems and how the stack reacts."""

import pytest

from repro.core.fagin import fagin_top_k
from repro.core.graded import GradedItem
from repro.core.sources import GradedSource, ListSource, VerifyingSource
from repro.errors import AccessError, GradeError
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent
from repro.core.sources import sources_from_columns


class OutOfOrderSource(GradedSource):
    """A subsystem whose 'sorted' stream has an inversion at position 2."""

    def __init__(self) -> None:
        super().__init__("liar")
        self._items = [
            GradedItem("a", 0.9),
            GradedItem("b", 0.4),
            GradedItem("c", 0.8),  # inversion
            GradedItem("d", 0.2),
        ]
        self._grades = {i.object_id: i.grade for i in self._items}

    def _item_at(self, index):
        return self._items[index] if index < len(self._items) else None

    def _grade_of(self, object_id):
        return self._grades[object_id]

    def __len__(self):
        return len(self._items)


class InconsistentSource(ListSource):
    """Random access disagrees with the sorted stream (§4.2's ID worry)."""

    def _grade_of(self, object_id):
        return super()._grade_of(object_id) * 0.5


def test_verifier_passes_well_behaved_sources():
    table = independent(100, 2, seed=1)
    verified = [VerifyingSource(s) for s in sources_from_columns(table)]
    plain = fagin_top_k(sources_from_columns(table), tnorms.MIN, 5)
    result = fagin_top_k(verified, tnorms.MIN, 5)
    assert result.answers.same_grade_multiset(plain.answers)


def test_verifier_catches_sorted_order_violation():
    source = VerifyingSource(OutOfOrderSource())
    cursor = source.cursor()
    cursor.next()
    cursor.next()
    with pytest.raises(AccessError) as excinfo:
        cursor.next()
    assert "sorted order" in str(excinfo.value)


def test_verifier_catches_sorted_random_inconsistency():
    inner = InconsistentSource({"a": 0.9, "b": 0.4}, name="two-faced")
    source = VerifyingSource(inner)
    cursor = source.cursor()
    cursor.next()  # delivers a at (fake) 0.45 via the overridden grade?
    # sorted access reads the true list; random access returns half.
    with pytest.raises(AccessError) as excinfo:
        source.random_access("a")
    assert "inconsistent" in str(excinfo.value)


def test_verifier_random_access_without_sorted_history_is_trusted():
    inner = InconsistentSource({"a": 0.9}, name="unseen")
    source = VerifyingSource(inner)
    # nothing delivered under sorted access yet: no basis to contradict
    assert source.random_access("a") == pytest.approx(0.45)


def test_unverified_misbehaving_source_corrupts_silently():
    """The motivation: without the wrapper, the same inversion produces a
    *wrong answer*, not an error."""
    bad = OutOfOrderSource()
    good = ListSource({"a": 0.5, "b": 0.95, "c": 0.9, "d": 0.1}, name="ok")
    result = fagin_top_k([bad, good], tnorms.MIN, 1)
    # The true best under min is c (min(0.8, 0.9) = 0.8); A0 may or may
    # not find it depending on where the inversion hides — the point is
    # simply that no error surfaces.
    assert len(result.answers) == 1


def test_grade_range_violations_surface_at_construction():
    with pytest.raises(GradeError):
        ListSource({"a": 1.7}, name="out-of-range")


def test_universe_mismatch_is_rejected_before_running():
    from repro.errors import AccessError as AE

    lists = [
        ListSource({"a": 0.5, "b": 0.4}, name="two"),
        ListSource({"a": 0.5}, name="one"),
    ]
    with pytest.raises(AE):
        fagin_top_k(lists, tnorms.MIN, 1)


def test_verifier_shares_accounting():
    inner = ListSource({"a": 0.9, "b": 0.4}, name="L")
    source = VerifyingSource(inner)
    source.cursor().next()
    source.random_access("b")
    assert inner.counter.snapshot() == (1, 1)
