"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_demo_command(capsys):
    assert main(["demo", "-k", "3"]) == 0
    output = capsys.readouterr().out
    assert "Artist='Beatles'" in output
    assert "plan:" in output
    assert "cost:" in output


def test_sql_one_shot(capsys):
    code = main(
        [
            "sql",
            "--size",
            "300",
            "SELECT * FROM albums WHERE AlbumColor = 'red' STOP AFTER 4",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert output.count("cd") >= 4
    assert "algorithm:" in output


def test_sql_against_image_database(capsys):
    code = main(
        [
            "sql",
            "--database",
            "images",
            "--size",
            "40",
            "SELECT * FROM images WHERE Color = 'red' STOP AFTER 3",
        ]
    )
    assert code == 0
    assert "img" in capsys.readouterr().out


def test_sql_syntax_error_reported(capsys):
    code = main(["sql", "--size", "100", "SELECT nonsense"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_sql_uses_default_k(capsys):
    code = main(
        ["sql", "--size", "200", "-k", "2",
         "SELECT * FROM albums WHERE AlbumColor = 'red'"]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert output.count("cd") == 2


def test_experiments_quick(capsys):
    code = main(["experiments", "--quick"])
    assert code == 0
    output = capsys.readouterr().out
    assert "E1" in output and "E10" in output


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_sql_shell_exits_on_empty_line(monkeypatch, capsys):
    inputs = iter(["SELECT * FROM albums WHERE AlbumColor = 'red' STOP AFTER 2", ""])
    monkeypatch.setattr("builtins.input", lambda prompt="": next(inputs))
    assert main(["sql", "--size", "150"]) == 0
    assert "algorithm:" in capsys.readouterr().out
