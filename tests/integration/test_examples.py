"""Smoke tests: the fast example scripts run end to end.

(The image/video examples build sizable corpora; they are exercised by
their underlying module tests instead of re-run here.)
"""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    output = run_example("quickstart.py", capsys)
    assert "Fagin's algorithm" in output
    assert "speedup" in output
    assert "continue where we left off" in output.lower() or "second batch" in output


def test_cd_store(capsys):
    output = run_example("cd_store.py", capsys)
    assert "Beatles" in output
    assert "boolean-first" in output
    assert "SQL form" in output


def test_weighted_preferences(capsys):
    output = run_example("weighted_preferences.py", capsys)
    assert "color weight" in output
    assert "D1" in output and "D2" in output and "D3'" in output
