"""Source wrappers compose: verified, cached, batched, mapped stacks."""

import pytest

from repro.core.batching import BatchedSource
from repro.core.fagin import fagin_top_k
from repro.core.naive import grade_everything
from repro.core.sources import ListSource, VerifyingSource, sources_from_columns
from repro.middleware.caching import CachedSource
from repro.middleware.idmap import IdMapping, MappedSource
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent


def oracle(table, k):
    return grade_everything(sources_from_columns(table), tnorms.MIN).top(k)


def test_cached_over_batched():
    """The middleware caches what the repository shipped in batches:
    a second pass costs the repository nothing, batch overshoot and all."""
    table = independent(300, 2, seed=2)
    inners = sources_from_columns(table)
    stacks = [CachedSource(BatchedSource(inner, 20)) for inner in inners]
    first = fagin_top_k(stacks, tnorms.MIN, 5)
    assert first.answers.same_grade_multiset(oracle(table, 5))
    repository_cost = sum(
        s._inner.counter.database_access_cost for s in stacks
    )
    second = fagin_top_k(stacks, tnorms.MIN, 5)
    assert second.answers.same_grade_multiset(first.answers)
    assert (
        sum(s._inner.counter.database_access_cost for s in stacks)
        == repository_cost
    )


def test_verified_over_batched():
    table = independent(200, 2, seed=3)
    stacks = [
        VerifyingSource(BatchedSource(inner, 16))
        for inner in sources_from_columns(table)
    ]
    result = fagin_top_k(stacks, tnorms.MIN, 5)
    assert result.answers.same_grade_multiset(oracle(table, 5))


def test_mapped_over_cached():
    local = ListSource({"l-a": 0.9, "l-b": 0.4}, name="local")
    mapping = IdMapping({"g-a": "l-a", "g-b": "l-b"})
    stack = MappedSource(CachedSource(local), mapping)
    cursor = stack.cursor()
    assert cursor.next().object_id == "g-a"
    assert stack.random_access("g-b") == pytest.approx(0.4)
    # second prefix read is a cache hit: no new repository charge
    before = local.counter.sorted_accesses
    stack.cursor().next()
    assert local.counter.sorted_accesses == before


def test_triple_stack_end_to_end():
    """verified(cached(batched(list))) still answers correctly."""
    table = independent(250, 2, seed=4)
    stacks = [
        VerifyingSource(CachedSource(BatchedSource(inner, 10)))
        for inner in sources_from_columns(table)
    ]
    result = fagin_top_k(stacks, tnorms.MIN, 7)
    assert result.answers.same_grade_multiset(oracle(table, 7))
