"""Full-stack integration: QBIC + relational + engine + SQL + promotion."""

import pytest

from repro.core.graded import GradedSet
from repro.core.naive import grade_everything
from repro.core.query import Atomic, Weighted
from repro.middleware.complex_objects import PromotedSource
from repro.multimedia.qbic import QbicSubsystem
from repro.sql.compiler import execute
from repro.workloads.image_corpus import (
    advertisements_scenario,
    build_image_database,
    mixed_corpus,
)


@pytest.fixture(scope="module")
def image_db():
    return build_image_database(60, seed=10)


def test_color_and_shape_over_real_qbic(image_db):
    query = Atomic("Color", "red") & Atomic("Shape", "round")
    result = image_db.top_k(query, 5)
    sources = image_db.bind_all(query)
    expected = grade_everything(sources, lambda g: min(g)).top(5)
    assert result.answers.same_grade_multiset(expected)


def test_weighted_color_shape_texture(image_db):
    query = Weighted(
        (Atomic("Color", "red"), Atomic("Shape", "round"), Atomic("Texture", "smooth")),
        (0.5, 0.3, 0.2),
    )
    result = image_db.top_k(query, 5)
    assert len(result.answers) == 5
    from repro.core.evaluation import compile_query

    expected = grade_everything(
        image_db.bind_all(query), compile_query(query)
    ).top(5)
    assert result.answers.same_grade_multiset(expected)


def test_sql_to_qbic(image_db):
    result = execute(
        "SELECT * FROM images WHERE Color = 'red' AND Category = 'nature' "
        "STOP AFTER 5",
        image_db,
    )
    assert len(result.answers) == 5


def test_batched_retrieval_matches_single_shot(image_db):
    query = Atomic("Color", "blue")
    handle = image_db.open_query(query)
    batches = [handle.fetch(4) for _ in range(3)]
    combined = GradedSet(
        {
            item.object_id: item.grade
            for batch in batches
            for item in batch.answers
        }
    )
    oneshot = image_db.top_k(query, 12)
    assert combined.same_grade_multiset(oneshot.answers)


def test_advertisement_promotion_end_to_end():
    """Section 4.2: rank Advertisements by the redness of their AdPhotos,
    including shared photos, through the standard algorithm stack."""
    photos, containment = advertisements_scenario(25, photos_per_ad=3, seed=11)
    qbic = QbicSubsystem("photos", photos)
    photo_source = qbic.bind(Atomic("Color", "red"))
    promoted = PromotedSource(photo_source, containment)

    # exhaust the promoted stream; it must cover every ad exactly once,
    # in nonincreasing grade order, with max-over-children grades
    cursor = promoted.cursor()
    seen = []
    while True:
        item = cursor.next()
        if item is None:
            break
        seen.append(item)
    assert len(seen) == len(containment)
    grades = [item.grade for item in seen]
    assert grades == sorted(grades, reverse=True)
    photo_grades = photo_source.as_graded_set()
    for item in seen:
        best_child = max(
            photo_grades[child]
            for child in containment.children_of(item.object_id)
        )
        assert item.grade == pytest.approx(best_child)


def test_mixed_corpus_plant_is_retrievable():
    """Themed (red) images must dominate the Color='red' ranking."""
    corpus = mixed_corpus(60, seed=12, theme="red", themed_fraction=0.25)
    qbic = QbicSubsystem("q", corpus)
    graded = qbic.bind(Atomic("Color", "red")).as_graded_set()
    top10 = [item.object_id for item in graded.top(10)]
    # themed images occupy low indices by construction (img0..img14)
    themed_low = {f"img{i}" for i in range(15)}
    hits = sum(1 for object_id in top10 if object_id in themed_low)
    assert hits >= 6
