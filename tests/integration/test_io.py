"""Persistence round trips."""

import json

import pytest

from repro.core.graded import GradedSet
from repro.errors import ReproError
from repro.io import (
    load_catalog,
    load_grade_table,
    load_graded_set,
    load_histogram,
    save_catalog,
    save_grade_table,
    save_graded_set,
    save_histogram,
)
from repro.middleware.statistics import GradeHistogram
from repro.workloads.cd_store import build_store, generate_catalog
from repro.workloads.graded_lists import independent


def test_graded_set_round_trip(tmp_path):
    original = GradedSet({"a": 0.123456789, "b": 1.0, "c": 0.0})
    path = tmp_path / "set.json"
    save_graded_set(original, path)
    assert load_graded_set(path).grades_equal(original, tol=0.0)


def test_grade_table_round_trip(tmp_path):
    table = independent(50, 3, seed=2)
    path = tmp_path / "table.json"
    save_grade_table(table, path)
    assert load_grade_table(path) == table


def test_catalog_round_trip_and_reuse(tmp_path):
    catalog = generate_catalog(40, seed=3)
    path = tmp_path / "catalog.json"
    save_catalog(catalog, path)
    restored = load_catalog(path)
    assert restored == catalog
    # the restored catalog drives the engine exactly like the original
    engine = build_store(restored)
    from repro.core.query import Atomic

    result = engine.top_k(Atomic("AlbumColor", "red"), 3)
    assert len(result.answers) == 3


def test_histogram_round_trip(tmp_path):
    histogram = GradeHistogram([3, 5, 0, 2, 10])
    path = tmp_path / "stats.json"
    save_histogram(histogram, path)
    restored = load_histogram(path)
    assert list(restored.counts) == [3, 5, 0, 2, 10]
    assert restored.survival(0.5) == pytest.approx(histogram.survival(0.5))


def test_format_tag_is_checked(tmp_path):
    path = tmp_path / "set.json"
    save_graded_set(GradedSet({"a": 0.5}), path)
    with pytest.raises(ReproError):
        load_catalog(path)  # wrong kind


def test_corrupt_json_reported(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ReproError):
        load_graded_set(path)


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"format": "graded-set", "version": 99, "data": {}}))
    with pytest.raises(ReproError):
        load_graded_set(path)


def test_malformed_catalog_rows_rejected(tmp_path):
    path = tmp_path / "cat.json"
    path.write_text(
        json.dumps(
            {"format": "album-catalog", "version": 1, "data": [{"nope": 1}]}
        )
    )
    with pytest.raises(ReproError):
        load_catalog(path)


def test_missing_file_reported(tmp_path):
    with pytest.raises(ReproError):
        load_graded_set(tmp_path / "absent.json")
