"""Query AST: operators, flattening, atoms, positivity."""

import pytest

from repro.core.query import (
    And,
    Atomic,
    Not,
    Or,
    Scored,
    Weighted,
    conjunction_of,
    disjunction_of,
)
from repro.errors import WeightingError
from repro.scoring import means, tnorms

COLOR = Atomic("Color", "red")
SHAPE = Atomic("Shape", "round")
ARTIST = Atomic("Artist", "Beatles")


def test_operator_and_flattens():
    q = COLOR & SHAPE & ARTIST
    assert isinstance(q, And)
    assert q.children == (COLOR, SHAPE, ARTIST)


def test_operator_or_flattens():
    q = COLOR | SHAPE | ARTIST
    assert isinstance(q, Or)
    assert len(q.children) == 3


def test_mixed_operators_do_not_flatten_across_types():
    q = (COLOR & SHAPE) | ARTIST
    assert isinstance(q, Or)
    assert isinstance(q.children[0], And)


def test_invert_and_double_negation():
    negated = ~COLOR
    assert isinstance(negated, Not)
    assert ~negated is COLOR


def test_atoms_in_order_with_duplicates():
    q = (COLOR & SHAPE) | COLOR
    assert q.atoms() == (COLOR, SHAPE, COLOR)


def test_atomic_equality_and_hash():
    assert Atomic("Color", "red") == COLOR
    assert hash(Atomic("Color", "red")) == hash(COLOR)
    assert Atomic("Color", "blue") != COLOR


def test_is_positive():
    assert (COLOR & SHAPE).is_positive
    assert not (~COLOR).is_positive
    assert not (COLOR & ~SHAPE).is_positive
    assert Scored(means.MEAN, (COLOR, SHAPE)).is_positive
    assert not Scored(means.MEAN, (COLOR, ~SHAPE)).is_positive


def test_scored_requires_children():
    with pytest.raises(ValueError):
        Scored(tnorms.MIN, ())


def test_weighted_validates():
    q = Weighted((COLOR, SHAPE), (2 / 3, 1 / 3))
    assert q.base.name == "min"
    with pytest.raises(WeightingError):
        Weighted((COLOR, SHAPE), (0.5, 0.3, 0.2))
    with pytest.raises(WeightingError):
        Weighted((COLOR, SHAPE), (0.9, 0.9))


def test_weighted_custom_base():
    q = Weighted((COLOR, SHAPE), (0.5, 0.5), base=means.MEAN)
    assert q.base is means.MEAN


def test_convenience_builders():
    assert conjunction_of(COLOR) is COLOR
    assert isinstance(conjunction_of(COLOR, SHAPE), And)
    assert disjunction_of(COLOR) is COLOR
    assert isinstance(disjunction_of(COLOR, SHAPE), Or)


def test_str_forms_are_readable():
    assert str(COLOR) == "Color='red'"
    assert "AND" in str(COLOR & SHAPE)
    assert "OR" in str(COLOR | SHAPE)
    assert "NOT" in str(~COLOR)
    assert "min" in str(Scored(tnorms.MIN, (COLOR, SHAPE)))
    assert "weighted" in str(Weighted((COLOR, SHAPE), (0.5, 0.5)))


def test_nary_requires_children():
    with pytest.raises(ValueError):
        And(())
