"""Sources: the sorted/random access model with built-in accounting."""

import pytest

from repro.core.sources import (
    ListSource,
    SortedOnlySource,
    check_same_objects,
    sources_from_columns,
)
from repro.errors import AccessError, UnknownObjectError, UnsupportedAccessError


def test_sorted_access_is_nonincreasing_and_counted():
    source = ListSource({"a": 0.3, "b": 0.9, "c": 0.6}, name="L")
    cursor = source.cursor()
    grades = [cursor.next().grade for _ in range(3)]
    assert grades == sorted(grades, reverse=True)
    assert cursor.next() is None
    assert source.counter.sorted_accesses == 3


def test_exhausted_cursor_costs_nothing_extra():
    source = ListSource({"a": 0.3}, name="L")
    cursor = source.cursor()
    cursor.next()
    assert cursor.next() is None
    assert cursor.next() is None
    assert source.counter.sorted_accesses == 1


def test_random_access_counted_and_validated():
    source = ListSource({"a": 0.3}, name="L")
    assert source.random_access("a") == 0.3
    assert source.counter.random_accesses == 1
    with pytest.raises(UnknownObjectError):
        source.random_access("nope")


def test_independent_cursors_resume_independently():
    source = ListSource({"a": 0.9, "b": 0.5, "c": 0.1}, name="L")
    first = source.cursor()
    second = source.cursor()
    assert first.next().object_id == "a"
    assert first.next().object_id == "b"
    assert second.next().object_id == "a"
    assert first.position == 2 and second.position == 1


def test_peek_does_not_pay():
    source = ListSource({"a": 0.9}, name="L")
    cursor = source.cursor()
    assert cursor.peek_grade() == 0.9
    assert source.counter.sorted_accesses == 0
    assert not cursor.exhausted


def test_ties_order_deterministically():
    source = ListSource({"z": 0.5, "a": 0.5}, name="L")
    cursor = source.cursor()
    assert cursor.next().object_id == "a"
    assert cursor.next().object_id == "z"


def test_as_graded_set_is_free():
    source = ListSource({"a": 0.9, "b": 0.5}, name="L")
    graded = source.as_graded_set()
    assert len(graded) == 2
    assert source.counter.database_access_cost == 0


def test_object_ids_in_sorted_order():
    source = ListSource({"a": 0.1, "b": 0.9}, name="L")
    assert list(source.object_ids()) == ["b", "a"]


def test_sorted_only_source_blocks_random_access():
    inner = ListSource({"a": 0.5}, name="L")
    limited = SortedOnlySource(inner)
    assert not limited.supports_random_access
    cursor = limited.cursor()
    assert cursor.next().object_id == "a"
    with pytest.raises(UnsupportedAccessError):
        limited.random_access("a")
    # sorted accesses land on the shared counter
    assert inner.counter.sorted_accesses == 1


def test_sources_from_columns():
    sources = sources_from_columns(
        {"a": (0.1, 0.9), "b": (0.5, 0.5)}, names=("first", "second")
    )
    assert [s.name for s in sources] == ["first", "second"]
    assert sources[0].random_access("a") == pytest.approx(0.1)
    assert sources[1].random_access("a") == pytest.approx(0.9)


def test_sources_from_columns_validates():
    with pytest.raises(AccessError):
        sources_from_columns({"a": (0.1, 0.9), "b": (0.5,)})
    with pytest.raises(AccessError):
        sources_from_columns({"a": (0.1,)}, names=("x", "y"))


def test_check_same_objects():
    sources = sources_from_columns({"a": (0.1, 0.2), "b": (0.3, 0.4)})
    assert check_same_objects(sources) == 2
    mismatched = [
        ListSource({"a": 0.1}, name="one"),
        ListSource({"a": 0.1, "b": 0.2}, name="two"),
    ]
    with pytest.raises(AccessError):
        check_same_objects(mismatched)
    with pytest.raises(AccessError):
        check_same_objects([])
