"""The naive baseline: exact cost m*N and oracle-grade correctness."""

import pytest

from repro.core.graded import GradedSet
from repro.core.naive import grade_everything, naive_top_k
from repro.core.sources import sources_from_columns
from repro.scoring import conorms, means, tnorms
from repro.scoring.base import FunctionScoring
from repro.workloads.graded_lists import independent


def test_tiny_example(tiny_sources):
    result = naive_top_k(tiny_sources, tnorms.MIN, 2)
    assert result.answers.grades_equal(GradedSet({"b": 0.6, "a": 0.5}))


def test_cost_is_exactly_m_times_n():
    for n, m in ((50, 2), (40, 3), (30, 4)):
        sources = sources_from_columns(independent(n, m, seed=n))
        result = naive_top_k(sources, tnorms.MIN, 5)
        assert result.database_access_cost == m * n
        assert result.cost.random_access_cost == 0
        assert result.algorithm == "naive"


def test_correct_even_for_non_monotone_rules(independent_sources):
    """The naive scan sees everything, so it has no monotonicity
    requirement — that's why it serves as the test oracle."""
    weird = FunctionScoring(
        lambda g: abs(g[0] - g[1]), "difference", is_monotone=False
    )
    result = naive_top_k(independent_sources, weird, 5)
    expected = grade_everything(independent_sources, weird).top(5)
    assert result.answers.same_grade_multiset(expected)


def test_handles_disjunction_rule(independent_sources):
    result = naive_top_k(independent_sources, conorms.MAX, 5)
    expected = grade_everything(independent_sources, conorms.MAX).top(5)
    assert result.answers.same_grade_multiset(expected)


def test_k_capped_at_database_size(tiny_sources):
    result = naive_top_k(tiny_sources, means.MEAN, 99)
    assert len(result.answers) == 3


def test_k_validation(tiny_sources):
    with pytest.raises(ValueError):
        naive_top_k(tiny_sources, tnorms.MIN, 0)


def test_grade_everything_is_accounting_free(tiny_sources):
    grade_everything(tiny_sources, tnorms.MIN)
    assert all(s.counter.database_access_cost == 0 for s in tiny_sources)
