"""Fagin's algorithm A0: correctness, cost shape, and resumability."""

import pytest

from repro.core.fagin import FaginAlgorithm, fagin_top_k
from repro.core.graded import GradedSet
from repro.core.naive import grade_everything
from repro.core.sources import sources_from_columns
from repro.errors import MonotonicityError
from repro.scoring import means, tnorms
from repro.scoring.base import FunctionScoring
from repro.scoring.weighted import WeightedScoring
from repro.workloads.graded_lists import independent


def oracle_top(sources, scoring, k):
    return grade_everything(sources, scoring).top(k)


def test_tiny_example_by_hand(tiny_sources):
    # min grades: a -> 0.5, b -> 0.6, c -> 0.3
    result = fagin_top_k(tiny_sources, tnorms.MIN, 2)
    assert result.answers.grades_equal(GradedSet({"b": 0.6, "a": 0.5}))


def test_matches_oracle_on_independent_lists(independent_sources):
    result = fagin_top_k(independent_sources, tnorms.MIN, 10)
    assert result.answers.same_grade_multiset(
        oracle_top(independent_sources, tnorms.MIN, 10)
    )


def test_matches_oracle_m3(independent_sources_m3):
    result = fagin_top_k(independent_sources_m3, tnorms.MIN, 7)
    assert result.answers.same_grade_multiset(
        oracle_top(independent_sources_m3, tnorms.MIN, 7)
    )


@pytest.mark.parametrize(
    "scoring",
    [tnorms.MIN, tnorms.PRODUCT, tnorms.LUKASIEWICZ, means.MEAN,
     means.GEOMETRIC_MEAN, WeightedScoring(tnorms.MIN, (0.7, 0.3))],
    ids=lambda s: s.name,
)
def test_correct_for_every_monotone_rule(scoring, independent_sources):
    """Theorem 4.1 applies to ANY monotone scoring function."""
    result = fagin_top_k(independent_sources, scoring, 5)
    assert result.answers.same_grade_multiset(
        oracle_top(independent_sources, scoring, 5)
    )


def test_correct_on_correlated_and_anticorrelated(
    correlated_sources, anti_correlated_sources
):
    for sources in (correlated_sources, anti_correlated_sources):
        result = fagin_top_k(sources, tnorms.MIN, 8)
        assert result.answers.same_grade_multiset(oracle_top(sources, tnorms.MIN, 8))


def test_cost_beats_naive_on_large_instance():
    sources = sources_from_columns(independent(3000, 2, seed=3))
    result = fagin_top_k(sources, tnorms.MIN, 5)
    assert result.database_access_cost < 2 * 3000 / 3  # well under naive


def test_cost_report_covers_both_access_kinds(independent_sources):
    result = fagin_top_k(independent_sources, tnorms.MIN, 5)
    assert result.cost.sorted_access_cost > 0
    assert result.cost.random_access_cost > 0
    assert result.database_access_cost == (
        result.cost.sorted_access_cost + result.cost.random_access_cost
    )


def test_k_larger_than_database_returns_everything(tiny_sources):
    result = fagin_top_k(tiny_sources, tnorms.MIN, 50)
    assert len(result.answers) == 3


def test_k_must_be_positive(tiny_sources):
    algorithm = FaginAlgorithm(tiny_sources, tnorms.MIN)
    with pytest.raises(ValueError):
        algorithm.next_k(0)


def test_rejects_declared_non_monotone_rule(tiny_sources):
    bad = FunctionScoring(lambda g: 1 - min(g), "not-monotone", is_monotone=False)
    with pytest.raises(MonotonicityError):
        FaginAlgorithm(tiny_sources, bad)
    # explicit opt-out is allowed (caller takes responsibility)
    FaginAlgorithm(tiny_sources, bad, require_monotone=False)


def test_single_list_degenerates_to_sorted_prefix(independent_sources):
    single = independent_sources[:1]
    result = fagin_top_k(single, tnorms.MIN, 5)
    assert result.answers.same_grade_multiset(oracle_top(single, tnorms.MIN, 5))
    assert result.database_access_cost == 5  # k sorted accesses, nothing else


# ----------------------------------------------------------------------
# Resumability ("continue where we left off")
# ----------------------------------------------------------------------
def test_next_k_continues_without_rework(independent_sources):
    algorithm = FaginAlgorithm(independent_sources, tnorms.MIN)
    first = algorithm.next_k(5)
    second = algorithm.next_k(5)
    combined = GradedSet(first.answers.as_dict() | second.answers.as_dict())
    assert combined.same_grade_multiset(
        oracle_top(independent_sources, tnorms.MIN, 10)
    )
    # batches must not overlap
    assert not set(first.answers.objects()) & set(second.answers.objects())


def test_resumed_batch_is_cheaper_than_fresh():
    table = independent(500, 2, seed=21)
    resumable = FaginAlgorithm(sources_from_columns(table), tnorms.MIN)
    resumable.next_k(5)
    resumed_cost = resumable.next_k(5).database_access_cost
    # A from-scratch top-10 run pays for everything the resumed run
    # already amortized, so the second batch alone must cost less.
    from_scratch = fagin_top_k(sources_from_columns(table), tnorms.MIN, 10)
    assert resumed_cost < from_scratch.database_access_cost


def test_emitted_accumulates(independent_sources):
    algorithm = FaginAlgorithm(independent_sources, tnorms.MIN)
    algorithm.next_k(3)
    algorithm.next_k(3)
    assert len(algorithm.emitted) == 6


def test_exhausting_database_via_batches(tiny_sources):
    algorithm = FaginAlgorithm(tiny_sources, tnorms.MIN)
    batch1 = algorithm.next_k(2)
    batch2 = algorithm.next_k(2)
    assert len(batch1.answers) == 2
    assert len(batch2.answers) == 1  # only one object left
    batch3 = algorithm.next_k(2)
    assert len(batch3.answers) == 0


def test_per_phase_accounting(independent_sources):
    result = fagin_top_k(independent_sources, tnorms.MIN, 5)
    extras = result.extras
    assert extras["phase_sorted_cost"] == result.cost.sorted_access_cost
    assert extras["phase_random_cost"] == result.cost.random_access_cost
    assert extras["objects_seen"] >= 5


def test_resumption_never_rescans_sorted_prefixes():
    """Regression: paging through pages of k must reach the same sorted
    depth (and roughly the same total cost) as one run at the final
    depth — resumed match counting once undercounted and scanned ~2x
    too deep."""
    table = independent(2000, 2, seed=37)
    algorithm = FaginAlgorithm(sources_from_columns(table), tnorms.MIN)
    cumulative = 0
    for _ in range(5):
        result = algorithm.next_k(10)
        cumulative += result.database_access_cost
    scratch = fagin_top_k(sources_from_columns(table), tnorms.MIN, 50)
    assert result.sorted_depth == scratch.sorted_depth
    assert cumulative <= scratch.database_access_cost * 1.15
