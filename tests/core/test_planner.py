"""The planner: strategy selection and cost rationales."""

import pytest

from repro.core.naive import grade_everything
from repro.core.planner import Strategy, execute, plan_top_k, top_k
from repro.core.sources import ListSource, SortedOnlySource, sources_from_columns
from repro.errors import PlanError
from repro.middleware.relational import BooleanSource
from repro.scoring import conorms, means, tnorms
from repro.scoring.base import FunctionScoring
from repro.workloads.graded_lists import boolean_column, independent


def fuzzy_sources(n=400, m=2, seed=2):
    return sources_from_columns(independent(n, m, seed=seed))


def test_max_rule_picks_disjunction():
    plan = plan_top_k(fuzzy_sources(), conorms.MAX, 10)
    assert plan.strategy is Strategy.DISJUNCTION
    assert plan.estimated_cost == 20


def test_min_rule_picks_a_sublinear_strategy():
    plan = plan_top_k(fuzzy_sources(), tnorms.MIN, 10)
    assert plan.strategy in (Strategy.THRESHOLD, Strategy.FAGIN, Strategy.NRA)
    assert plan.estimated_cost < 2 * 400


def test_selective_boolean_conjunct_picks_boolean_first():
    crisp = boolean_column(400, 0.02, seed=3)
    fuzzy = {k: v[0] for k, v in independent(400, 1, seed=3).items()}
    sources = [BooleanSource(crisp, "artist"), ListSource(fuzzy, "color")]
    plan = plan_top_k(sources, tnorms.MIN, 10)
    assert plan.strategy is Strategy.BOOLEAN_FIRST
    assert plan.boolean_index == 0


def test_unselective_boolean_conjunct_is_not_chosen():
    crisp = boolean_column(400, 0.95, seed=3)
    fuzzy = {k: v[0] for k, v in independent(400, 1, seed=3).items()}
    sources = [BooleanSource(crisp, "artist"), ListSource(fuzzy, "color")]
    plan = plan_top_k(sources, tnorms.MIN, 10)
    assert plan.strategy is not Strategy.BOOLEAN_FIRST


def test_boolean_first_not_offered_for_mean():
    """The arithmetic mean does not annihilate at 0, so filtering on the
    Boolean conjunct first would be incorrect — the planner must know."""
    crisp = boolean_column(400, 0.02, seed=3)
    fuzzy = {k: v[0] for k, v in independent(400, 1, seed=3).items()}
    sources = [BooleanSource(crisp, "artist"), ListSource(fuzzy, "color")]
    with pytest.raises(PlanError):
        plan_top_k(sources, means.MEAN, 10, prefer=Strategy.BOOLEAN_FIRST)


def test_sorted_only_sources_forbid_random_access_strategies():
    sources = [SortedOnlySource(s) for s in fuzzy_sources()]
    plan = plan_top_k(sources, tnorms.MIN, 10)
    assert plan.strategy in (Strategy.NRA, Strategy.NAIVE)
    with pytest.raises(PlanError):
        plan_top_k(sources, tnorms.MIN, 10, prefer=Strategy.FAGIN)


def test_non_monotone_rule_falls_back_to_naive():
    weird = FunctionScoring(lambda g: abs(g[0] - g[1]), "diff", is_monotone=False)
    plan = plan_top_k(fuzzy_sources(), weird, 10)
    assert plan.strategy is Strategy.NAIVE


def test_prefer_overrides_cost_ranking():
    plan = plan_top_k(fuzzy_sources(), tnorms.MIN, 10, prefer=Strategy.NAIVE)
    assert plan.strategy is Strategy.NAIVE


@pytest.mark.parametrize(
    "strategy",
    [Strategy.FAGIN, Strategy.THRESHOLD, Strategy.NRA, Strategy.NAIVE],
    ids=lambda s: s.value,
)
def test_every_min_strategy_executes_correctly(strategy):
    sources = fuzzy_sources(seed=17)
    plan = plan_top_k(sources, tnorms.MIN, 8, prefer=strategy)
    result = execute(plan, sources)
    expected = grade_everything(sources, tnorms.MIN).top(8)
    assert result.answers.same_grade_multiset(expected)
    assert result.algorithm == strategy.value


def test_top_k_end_to_end():
    sources = fuzzy_sources(seed=23)
    result = top_k(sources, tnorms.MIN, 5)
    expected = grade_everything(sources, tnorms.MIN).top(5)
    assert result.answers.same_grade_multiset(expected)


def test_plan_repr_mentions_strategy():
    plan = plan_top_k(fuzzy_sources(), tnorms.MIN, 10)
    assert plan.strategy.value in repr(plan)


def test_k_validation():
    with pytest.raises(ValueError):
        plan_top_k(fuzzy_sources(), tnorms.MIN, 0)
