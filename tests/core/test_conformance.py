"""Differential conformance suite: every algorithm agrees with the oracle.

Property-based lockdown of the paper's correctness claims: over random
graded databases — with deliberate grade ties and duplicates — the naive
scan, Fagin's A0, TA, NRA, and (where applicable) boolean-first and the
disjunction m*k algorithm must all return the *same top-k grade
multiset* for every monotone scoring function and every k, including
k = 1, k = N, and k > N.  Object identity may differ under ties (the
paper permits arbitrary choice among equals), so the comparison is by
grade multiset, the invariant the paper actually guarantees.

A second property pins the observability tentpole to the cost model:
under a tracer, the recorded timeline's per-source access tallies equal
the cost report's, exactly, for every algorithm on every database.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean_first import boolean_first_top_k
from repro.core.disjunction import disjunction_top_k
from repro.core.fagin import fagin_top_k
from repro.core.naive import grade_everything, naive_top_k
from repro.core.sources import sources_from_columns
from repro.core.threshold import combined_top_k, nra_top_k, threshold_top_k
from repro.observability import QueryTracer
from repro.scoring import conorms, means, tnorms
from repro.scoring.owa import owa_mean
from tests.strategies import boolean_databases, graded_databases, pick_k

RULES = (
    tnorms.MIN,
    tnorms.PRODUCT,
    means.MEAN,
    means.GEOMETRIC_MEAN,
)


def pick_rule(table, index):
    """A monotone rule matched to the table's arity (OWA needs m)."""
    m = len(next(iter(table.values())))
    fixed = RULES + (owa_mean(m),)
    return fixed[index % len(fixed)]


def oracle_top(table, rule, k):
    sources = sources_from_columns(table, backend="list")
    return grade_everything(sources, rule).top(min(k, len(table)))


def _wrap(algorithm):
    def run(s, rule, k, tracer, executor=None):
        return algorithm(s, rule, k, tracer=tracer, executor=executor)

    return run


ALGORITHMS = (
    ("naive", _wrap(naive_top_k)),
    ("a0", _wrap(fagin_top_k)),
    ("ta", _wrap(threshold_top_k)),
    ("nra", _wrap(nra_top_k)),
    ("ca", _wrap(combined_top_k)),
)


@settings(deadline=None, max_examples=60)
@given(data=graded_databases(), rule_index=st.integers(0, 4), k_selector=st.integers(0, 2))
def test_all_algorithms_agree_with_oracle(data, rule_index, k_selector):
    table, _ = data
    rule = pick_rule(table, rule_index)
    k = pick_k(table, k_selector)
    expected = oracle_top(table, rule, k)
    for name, run in ALGORITHMS:
        sources = sources_from_columns(table, backend="list")
        result = run(sources, rule, k, None)
        assert result.answers.same_grade_multiset(expected), (
            f"{name} disagrees with the oracle: "
            f"{result.answers.as_dict()} != {expected.as_dict()} "
            f"(rule={rule.name}, k={k}, table={table})"
        )


@settings(deadline=None, max_examples=40)
@given(data=graded_databases(min_m=2), k_selector=st.integers(0, 2))
def test_disjunction_agrees_with_max_oracle(data, k_selector):
    table, _ = data
    k = pick_k(table, k_selector)
    expected = oracle_top(table, conorms.MAX, k)
    sources = sources_from_columns(table, backend="list")
    result = disjunction_top_k(sources, k)
    assert result.answers.same_grade_multiset(expected)


@settings(deadline=None, max_examples=40)
@given(
    data=boolean_databases(),
    rule_index=st.integers(0, 1),
    k_selector=st.integers(0, 2),
)
def test_boolean_first_agrees_with_oracle(data, rule_index, k_selector):
    table, _ = data
    rule = (tnorms.MIN, tnorms.PRODUCT)[rule_index]  # annihilate at zero
    k = pick_k(table, k_selector)
    expected = oracle_top(table, rule, k)
    sources = sources_from_columns(table, backend="list")
    result = boolean_first_top_k(sources, rule, k, boolean_index=0)
    assert result.answers.same_grade_multiset(expected)


@settings(deadline=None, max_examples=40)
@given(data=graded_databases(), rule_index=st.integers(0, 4), k_selector=st.integers(0, 2))
def test_traced_accesses_equal_cost_report(data, rule_index, k_selector):
    """sum(traced accesses) == result.cost, per source and per kind."""
    table, _ = data
    rule = pick_rule(table, rule_index)
    k = pick_k(table, k_selector)
    for name, run in ALGORITHMS:
        sources = sources_from_columns(table, backend="list")
        tracer = QueryTracer()
        result = run(sources, rule, k, tracer)
        counts = tracer.access_counts()
        for source in sources:
            sorted_n, random_n = counts.get(source.name, (0, 0))
            assert sorted_n == source.counter.sorted_accesses, (
                f"{name}: traced {sorted_n} sorted accesses on "
                f"{source.name}, counter says {source.counter.sorted_accesses}"
            )
            assert random_n == source.counter.random_accesses, (
                f"{name}: traced {random_n} random accesses on "
                f"{source.name}, counter says {source.counter.random_accesses}"
            )
        traced_total = sum(s + r for s, r in counts.values())
        assert traced_total == result.cost.database_access_cost, name


@settings(deadline=None, max_examples=25)
@given(
    data=graded_databases(min_m=2),
    rule_index=st.integers(0, 4),
    k_selector=st.integers(0, 2),
    workers=st.sampled_from((1, 2, 8)),
)
def test_parallel_execution_changes_nothing_observable(
    data, rule_index, k_selector, workers
):
    """Fan-out is invisible: same oracle agreement, same cost, same
    trace, at every worker count (the full byte-level differential lives
    in tests/parallel/test_parallel_conformance.py)."""
    from repro.parallel import ParallelAccessExecutor

    table, _ = data
    rule = pick_rule(table, rule_index)
    k = pick_k(table, k_selector)
    expected = oracle_top(table, rule, k)
    with ParallelAccessExecutor(workers) as executor:
        for name, run in ALGORITHMS:
            sources = sources_from_columns(table, backend="list")
            serial_tracer = QueryTracer()
            serial = run(sources, rule, k, serial_tracer)
            sources = sources_from_columns(table, backend="list")
            tracer = QueryTracer()
            result = run(
                sources,
                rule,
                k,
                tracer,
                executor=executor,
            )
            assert result.answers.same_grade_multiset(expected), name
            assert result.cost == serial.cost, name
            assert tracer.to_json() == serial_tracer.to_json(), name


@settings(deadline=None, max_examples=30)
@given(data=graded_databases(min_m=2), k_selector=st.integers(0, 2))
def test_tracing_does_not_change_answers_or_cost(data, k_selector):
    """A tracer is observation only: same answers, same cost, on or off."""
    table, _ = data
    k = pick_k(table, k_selector)
    for name, run in ALGORITHMS:
        plain = run(sources_from_columns(table, backend="list"), tnorms.MIN, k, None)
        traced = run(
            sources_from_columns(table, backend="list"),
            tnorms.MIN,
            k,
            QueryTracer(),
        )
        assert traced.answers.same_grade_multiset(plain.answers), name
        assert (
            traced.cost.database_access_cost == plain.cost.database_access_cost
        ), name
