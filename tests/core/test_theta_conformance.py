"""Conformance suite for TA-θ / NRA-θ (Fagin–Lotem–Naor approximation).

Three contracts, property-tested over the shared universe of tie-dense
graded databases:

* **θ = 1.0 is free.**  Passing ``theta=1.0`` is byte-identical to not
  passing it at all — same answers, same charged costs, same traces —
  across kernels, storage backends, and worker counts.  The knob must
  cost nothing when it is off.
* **θ > 1 keeps the FLN guarantee on true grades.**  For every returned
  object y and every excluded object z, ``theta * grade(y) >= grade(z)``
  holds for the *true* overall grades (NRA-θ may report lower-bound
  grades, so the check deliberately re-grades returned ids with the
  oracle).  The attached certificate never overstates quality: its
  ``achieved`` ratio is itself a valid bound and its intervals bracket
  the true grades.
* **Cost is monotone in θ.**  Relaxing the stop test can only stop
  earlier: ``cost(θ1) >= cost(θ2)`` whenever ``θ1 < θ2``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sources import sources_from_columns
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.observability import QueryTracer
from repro.parallel import ParallelAccessExecutor
from repro.scoring import means, tnorms
from repro.scoring.owa import owa_mean
from tests.cache.helpers import answer_pairs
from tests.strategies import graded_databases, pick_k

THETAS = (1.01, 1.05, 1.1, 1.5, 2.0)

#: (kernel, backend, workers) — a small cross-section of the execution
#: matrix; the dedicated kernel/storage suites cover each axis in depth.
CONFIGS = (
    ("scalar", "list", 1),
    ("scalar", "array", 3),
    ("vector", "array", 1),
    ("vector", "list", 3),
)


def pick_rule(m, index):
    """Batch-exact monotone rules (the byte-identity regime)."""
    rules = (tnorms.MIN, tnorms.PRODUCT, means.MEAN, owa_mean(m))
    return rules[index % len(rules)]


def run_ta(sources, rule, k, *, theta=None, tracer=None, executor=None,
           kernel=None):
    kwargs = {} if theta is None else {"theta": theta}
    return threshold_top_k(
        sources, rule, k, batch_size=3, tracer=tracer, executor=executor,
        kernel=kernel, **kwargs,
    )


def run_nra(sources, rule, k, *, theta=None, tracer=None, executor=None,
            kernel=None):
    kwargs = {} if theta is None else {"theta": theta}
    return nra_top_k(
        sources, rule, k, batch_size=3, tracer=tracer, executor=executor,
        kernel=kernel, **kwargs,
    )


ALGORITHMS = (("ta", run_ta), ("nra", run_nra))


def true_grade_table(table, rule):
    return {obj: rule(list(row)) for obj, row in table.items()}


def exact_kth_grade(table, rule, k):
    grades = sorted(true_grade_table(table, rule).values(), reverse=True)
    return grades[min(k, len(grades)) - 1]


def scrub(events):
    """Trace events without wall-clock fields (the only nondeterminism)."""
    return [
        {key: value for key, value in event.items() if key != "seconds"}
        for event in events
    ]


# ---------------------------------------------------------------------------
# θ = 1.0 is byte-identical to the exact path
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kernel,backend,workers", CONFIGS)
@settings(deadline=None, max_examples=15)
@given(
    data=graded_databases(max_n=16),
    rule_index=st.integers(0, 3),
    k_selector=st.integers(0, 2),
)
def test_theta_one_is_byte_identical(kernel, backend, workers, data,
                                     rule_index, k_selector):
    table, m = data
    rule = pick_rule(m, rule_index)
    k = pick_k(table, k_selector)
    executor = ParallelAccessExecutor(workers) if workers > 1 else None
    try:
        for name, run in ALGORITHMS:
            reference_tracer = QueryTracer()
            reference = run(
                sources_from_columns(table, backend=backend), rule, k,
                tracer=reference_tracer, executor=executor, kernel=kernel,
            )
            tracer = QueryTracer()
            result = run(
                sources_from_columns(table, backend=backend), rule, k,
                theta=1.0, tracer=tracer, executor=executor, kernel=kernel,
            )
            label = f"{name} kernel={kernel} backend={backend} workers={workers}"
            assert answer_pairs(result) == answer_pairs(reference), label
            assert result.cost == reference.cost, label
            assert result.sorted_depth == reference.sorted_depth, label
            assert result.grades_exact == reference.grades_exact, label
            assert result.approximation is None, label
            assert reference.approximation is None, label
            assert scrub(tracer.events) == scrub(reference_tracer.events), label
    finally:
        if executor is not None:
            executor.shutdown()


# ---------------------------------------------------------------------------
# θ > 1: FLN guarantee on TRUE grades, sound certificates
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=50)
@given(
    data=graded_databases(max_n=16),
    rule_index=st.integers(0, 3),
    k_selector=st.integers(0, 2),
    theta_index=st.integers(0, len(THETAS) - 1),
)
def test_theta_guarantee_holds_on_true_grades(data, rule_index, k_selector,
                                              theta_index):
    table, m = data
    rule = pick_rule(m, rule_index)
    k = pick_k(table, k_selector)
    theta = THETAS[theta_index]
    truth = true_grade_table(table, rule)
    kth_exact = exact_kth_grade(table, rule, k)
    for name, run in ALGORITHMS:
        result = run(
            sources_from_columns(table, backend="list"), rule, k, theta=theta,
        )
        assert len(result.answers) == min(k, len(table)), name
        for item in result.answers:
            assert theta * truth[item.object_id] >= kth_exact - 1e-9, (
                f"{name}: returned {item.object_id} with true grade "
                f"{truth[item.object_id]} but theta*grade < exact kth "
                f"{kth_exact} at theta={theta} (table={table})"
            )


@settings(deadline=None, max_examples=50)
@given(
    data=graded_databases(max_n=16),
    rule_index=st.integers(0, 3),
    k_selector=st.integers(0, 2),
    theta_index=st.integers(0, len(THETAS) - 1),
)
def test_certificate_never_overstates_quality(data, rule_index, k_selector,
                                              theta_index):
    table, m = data
    rule = pick_rule(m, rule_index)
    k = pick_k(table, k_selector)
    theta = THETAS[theta_index]
    truth = true_grade_table(table, rule)
    for name, run in ALGORITHMS:
        result = run(
            sources_from_columns(table, backend="list"), rule, k, theta=theta,
        )
        certificate = result.approximation
        assert certificate is not None, name
        assert certificate.theta == theta
        assert not certificate.anytime
        # Clean θ-stops certify at most θ (up to the bound tolerance).
        if certificate.kth_grade > 0:
            assert certificate.achieved <= theta + 1e-6, name
        returned = {item.object_id for item in result.answers}
        excluded_best = max(
            (grade for obj, grade in truth.items() if obj not in returned),
            default=0.0,
        )
        # The certified ratio must itself satisfy the FLN inequality on
        # true grades — an overstated (too small) ratio would break it.
        for item in result.answers:
            assert (
                certificate.achieved * truth[item.object_id]
                >= excluded_best - 1e-9
            ), (
                f"{name}: certificate claims ratio {certificate.achieved} "
                f"but {item.object_id} (true {truth[item.object_id]}) vs "
                f"excluded best {excluded_best} disproves it"
            )
        if certificate.intervals is not None:
            for obj, (lower, upper) in certificate.intervals.items():
                assert lower - 1e-12 <= truth[obj] <= upper + 1e-12, (
                    f"{name}: interval ({lower}, {upper}) misses true "
                    f"grade {truth[obj]} of {obj}"
                )


# ---------------------------------------------------------------------------
# Cost monotone in θ
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=40)
@given(
    data=graded_databases(max_n=16),
    rule_index=st.integers(0, 3),
    k_selector=st.integers(0, 2),
)
def test_access_cost_is_monotone_in_theta(data, rule_index, k_selector):
    table, m = data
    rule = pick_rule(m, rule_index)
    k = pick_k(table, k_selector)
    for name, run in ALGORITHMS:
        costs = []
        for theta in (1.0,) + THETAS:
            result = run(
                sources_from_columns(table, backend="list"), rule, k,
                theta=theta,
            )
            costs.append(result.database_access_cost)
        for tighter, looser in zip(costs, costs[1:]):
            assert tighter >= looser, (
                f"{name}: costs {costs} not non-increasing over "
                f"theta=(1.0,)+{THETAS} (table={table})"
            )


# ---------------------------------------------------------------------------
# Deterministic pins
# ---------------------------------------------------------------------------


def test_theta_below_one_rejected():
    sources = sources_from_columns({"a": (0.5, 0.5)}, backend="list")
    with pytest.raises(ValueError):
        threshold_top_k(sources, tnorms.MIN, 1, theta=0.9)
    with pytest.raises(ValueError):
        nra_top_k(sources, tnorms.MIN, 1, theta=0.5)


def test_theta_one_identical_on_memmap_sharded(tmp_path):
    """The storage axis the hypothesis matrix skips: memmap + shards."""
    table = {
        f"o{i:02d}": (round(0.05 * ((i * 7) % 20), 2),
                      round(0.05 * ((i * 13) % 20), 2))
        for i in range(40)
    }
    for name, run in ALGORITHMS:
        reference = run(
            sources_from_columns(table, backend="list"), tnorms.MIN, 5,
        )
        result = run(
            sources_from_columns(
                table, backend="memmap", shards=3, directory=str(tmp_path / name)
            ),
            tnorms.MIN,
            5,
            theta=1.0,
        )
        assert answer_pairs(result) == answer_pairs(reference), name
        assert result.cost == reference.cost, name
        assert result.approximation is None


def test_exhausted_theta_run_certifies_exactly():
    """Draining every list under θ > 1 proves achieved = 1.0."""
    table = {"a": (1.0, 1.0), "b": (0.5, 0.5), "c": (0.0, 0.0)}
    for name, run in ALGORITHMS:
        result = run(
            sources_from_columns(table, backend="list"), tnorms.MIN,
            len(table), theta=2.0,
        )
        certificate = result.approximation
        assert certificate is not None, name
        assert certificate.achieved == 1.0, name


def test_theta_trace_events_only_when_active():
    table = {f"o{i}": (0.1 * i % 1.0, 0.07 * i % 1.0) for i in range(20)}
    for name, run in ALGORITHMS:
        silent = QueryTracer()
        run(sources_from_columns(table, backend="list"), tnorms.MIN, 3,
            theta=1.0, tracer=silent)
        active = QueryTracer()
        run(sources_from_columns(table, backend="list"), tnorms.MIN, 3,
            theta=1.5, tracer=active)
        names = [e.get("name") for e in silent.events if e["type"] == "event"]
        assert "theta-certified" not in names, name
        names = [e.get("name") for e in active.events if e["type"] == "event"]
        assert "theta-certified" in names, name
