"""Grade semantics mu_Q(x) and query compilation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.evaluation import compile_query, evaluate
from repro.core.query import Atomic, Scored, Weighted
from repro.errors import ScoringError
from repro.scoring import means
from repro.scoring.zadeh import PROBABILISTIC

A = Atomic("A", 1)
B = Atomic("B", 1)
C = Atomic("C", 1)

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def test_atomic_grade_lookup_by_atom_and_by_attribute():
    assert evaluate(A, {A: 0.4}) == 0.4
    assert evaluate(A, {"A": 0.4}) == 0.4


def test_atomic_grade_via_callable():
    assert evaluate(A, lambda atom: 0.25) == 0.25


def test_missing_grade_raises():
    with pytest.raises(ScoringError):
        evaluate(A, {})


def test_zadeh_conjunction_rule():
    q = A & B
    assert evaluate(q, {"A": 0.7, "B": 0.3}) == 0.3


def test_zadeh_disjunction_rule():
    q = A | B
    assert evaluate(q, {"A": 0.7, "B": 0.3}) == 0.7


def test_zadeh_negation_rule():
    assert evaluate(~A, {"A": 0.3}) == pytest.approx(0.7)


def test_nested_combination():
    q = (A & B) | ~C
    value = evaluate(q, {"A": 0.8, "B": 0.6, "C": 0.9})
    assert value == pytest.approx(max(min(0.8, 0.6), 1 - 0.9))


def test_alternative_semantics():
    q = A & B
    assert evaluate(q, {"A": 0.5, "B": 0.5}, PROBABILISTIC) == pytest.approx(0.25)


def test_scored_node_uses_own_rule():
    q = Scored(means.MEAN, (A, B))
    assert evaluate(q, {"A": 0.2, "B": 0.8}) == pytest.approx(0.5)


def test_weighted_node_uses_fagin_wimmers():
    q = Weighted((A, B), (2 / 3, 1 / 3))
    value = evaluate(q, {"A": 0.9, "B": 0.6})
    assert value == pytest.approx((1 / 3) * 0.9 + (2 / 3) * 0.6)


@given(a=grades, b=grades)
def test_crisp_inputs_reduce_to_boolean_logic(a, b):
    """Conservation: with 0/1 grades the fuzzy rules are Boolean."""
    ca, cb = round(a), round(b)
    assert evaluate(A & B, {"A": ca, "B": cb}) == float(ca and cb)
    assert evaluate(A | B, {"A": ca, "B": cb}) == float(ca or cb)
    assert evaluate(~A, {"A": ca}) == float(not ca)


# ----------------------------------------------------------------------
# compile_query
# ----------------------------------------------------------------------
def test_compiled_matches_evaluate():
    q = (A & B) | C
    compiled = compile_query(q)
    for vector in ((0.1, 0.9, 0.5), (0.9, 0.9, 0.1), (0.0, 0.0, 1.0)):
        assignment = dict(zip(("A", "B", "C"), vector))
        assert compiled(vector) == pytest.approx(evaluate(q, assignment))


def test_compiled_flags_conjunction_of_atoms():
    compiled = compile_query(A & B)
    assert compiled.is_monotone
    assert compiled.is_strict


def test_compiled_flags_disjunction():
    compiled = compile_query(A | B)
    assert compiled.is_monotone
    assert not compiled.is_strict  # max is not strict


def test_compiled_flags_negation():
    compiled = compile_query(A & ~B)
    assert not compiled.is_monotone


def test_compiled_flags_weighted():
    strict = compile_query(Weighted((A, B), (0.6, 0.4)))
    assert strict.is_monotone and strict.is_strict
    droppable = compile_query(Weighted((A, B), (1.0, 0.0)))
    assert droppable.is_monotone and not droppable.is_strict


def test_compiled_rejects_duplicate_atoms():
    with pytest.raises(ScoringError):
        compile_query(A & A)


def test_compiled_wrong_arity():
    compiled = compile_query(A & B)
    with pytest.raises(ScoringError):
        compiled((0.5,))


def test_compiled_scored_mean_not_strict_flagged_conservatively():
    """MEAN declares is_strict=True and children are atoms, so the
    compiled conjunction under MEAN keeps strictness."""
    compiled = compile_query(Scored(means.MEAN, (A, B)))
    assert compiled.is_strict
