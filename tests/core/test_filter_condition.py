"""The Chaudhuri–Gravano filter-condition simulation."""

import pytest

from repro.core.filter_condition import filter_condition_top_k, filter_retrieve
from repro.core.naive import grade_everything
from repro.core.sources import ListSource, sources_from_columns
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent


def test_filter_retrieve_returns_exactly_the_threshold_set():
    source = ListSource({"a": 0.9, "b": 0.5, "c": 0.2}, name="L")
    found = filter_retrieve(source, 0.5)
    assert found == {"a": 0.9, "b": 0.5}
    # paid for the two hits plus the probe that fell below tau
    assert source.counter.sorted_accesses == 3


def test_filter_retrieve_exhausts_short_lists():
    source = ListSource({"a": 0.9}, name="L")
    assert filter_retrieve(source, 0.1) == {"a": 0.9}
    assert source.counter.sorted_accesses == 1


def test_matches_oracle(independent_sources):
    result = filter_condition_top_k(independent_sources, 10, initial_tau=0.6)
    expected = grade_everything(independent_sources, tnorms.MIN).top(10)
    assert result.answers.same_grade_multiset(expected)


def test_optimistic_threshold_forces_restarts():
    table = independent(300, 2, seed=6)
    eager = filter_condition_top_k(
        sources_from_columns(table), 10, initial_tau=0.99, decay=0.9
    )
    modest = filter_condition_top_k(
        sources_from_columns(table), 10, initial_tau=0.5
    )
    assert eager.restarts > 0
    assert eager.answers.same_grade_multiset(modest.answers)
    # every restart rescans, so eager pays more
    assert eager.database_access_cost > modest.database_access_cost / 2


def test_pessimistic_threshold_never_restarts(independent_sources):
    result = filter_condition_top_k(independent_sources, 10, initial_tau=0.05)
    assert result.restarts == 0


def test_fallback_at_zero_tau_always_succeeds():
    # all grades below any positive threshold: only the tau = 0 fallback
    # can produce k answers
    sources = sources_from_columns({f"o{i}": (0.1, 0.1) for i in range(20)})
    result = filter_condition_top_k(
        sources, 5, initial_tau=0.9, decay=0.5, max_restarts=3
    )
    assert len(result.answers) == 5


def test_parameter_validation(independent_sources):
    with pytest.raises(ValueError):
        filter_condition_top_k(independent_sources, 0)
    with pytest.raises(ValueError):
        filter_condition_top_k(independent_sources, 5, initial_tau=1.5)
    with pytest.raises(ValueError):
        filter_condition_top_k(independent_sources, 5, decay=1.0)
