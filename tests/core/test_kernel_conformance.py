"""Differential conformance for the vectorized kernels (repro.kernels).

The contract: for batch-exact rules the vector kernel is byte-identical
to the scalar kernel — same answers, same tie-breaks, same charged
access counts, same traces, same degradation behavior — at every
algorithm, over both columnar (ArraySource) and item-based (ListSource)
backends, serial and parallel.  Hypothesis drives the differential
runs; deterministic tests pin down kernel resolution, the engine/CLI
plumbing, degradation parity, and the ``stop_check_growth`` schedule.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fagin import FaginAlgorithm, fagin_top_k
from repro.core.naive import naive_top_k
from repro.core.sources import sources_from_columns
from repro.core.threshold import combined_top_k, nra_top_k, threshold_top_k
from repro.errors import ReproError
from repro.kernels import configure_kernel, default_kernel, resolve_kernel
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.resilience import VirtualClock
from repro.observability import QueryTracer
from repro.parallel import ParallelAccessExecutor
from repro.scoring import means, tnorms
from repro.scoring.owa import owa_mean
from repro.scoring.weighted import WeightedScoring
from repro.workloads.graded_lists import independent
from tests.strategies import graded_databases as shared_graded_databases
from tests.strategies import pick_k


def graded_databases(min_m=1, max_m=3, max_n=16):
    return shared_graded_databases(
        min_m=min_m, max_m=max_m, max_n=max_n, rows="list"
    )


def pick_rule(m, index):
    """Batch-exact rules only: the byte-identity contract applies to
    these (pow/log rules agree to 1e-12 and are excluded from auto)."""
    weights = ((1.0,), (0.7, 0.3), (0.5, 0.3, 0.2))[m - 1]
    rules = (
        tnorms.MIN,
        tnorms.PRODUCT,
        means.MEAN,
        owa_mean(m),
        WeightedScoring(tnorms.MIN, weights),
    )
    return rules[index % len(rules)]


def run_naive(sources, rule, k, tracer, executor, kernel):
    return naive_top_k(
        sources, rule, k, tracer=tracer, executor=executor, kernel=kernel
    )


def run_a0(sources, rule, k, tracer, executor, kernel):
    return fagin_top_k(
        sources, rule, k, tracer=tracer, executor=executor, kernel=kernel
    )


def run_ta(sources, rule, k, tracer, executor, kernel):
    return threshold_top_k(
        sources, rule, k, batch_size=3, tracer=tracer, executor=executor,
        kernel=kernel,
    )


def run_nra(sources, rule, k, tracer, executor, kernel):
    return nra_top_k(
        sources, rule, k, batch_size=3, tracer=tracer, executor=executor,
        kernel=kernel,
    )


def run_ca(sources, rule, k, tracer, executor, kernel):
    return combined_top_k(
        sources, rule, k, ratio=3.0, tracer=tracer, executor=executor,
        kernel=kernel,
    )


ALGORITHMS = (
    ("naive", run_naive),
    ("a0", run_a0),
    ("ta", run_ta),
    ("nra", run_nra),
    ("ca", run_ca),
)


def run_once(algorithm, table, rule, k, backend, kernel, workers=1, traced=True):
    sources = sources_from_columns(table, backend=backend)
    tracer = QueryTracer() if traced else None
    if workers == 1:
        result = algorithm(sources, rule, k, tracer, None, kernel)
    else:
        with ParallelAccessExecutor(workers) as executor:
            result = algorithm(sources, rule, k, tracer, executor, kernel)
    return result, tracer.to_json() if traced else None


def assert_identical(name, scalar, vector, scalar_trace, vector_trace):
    __tracebackhide__ = True
    assert [
        (item.object_id, item.grade) for item in vector.answers
    ] == [(item.object_id, item.grade) for item in scalar.answers], name
    assert vector.cost == scalar.cost, name
    assert vector.sorted_depth == scalar.sorted_depth, name
    assert vector.grades_exact == scalar.grades_exact, name
    assert vector.algorithm == scalar.algorithm, name
    assert vector_trace == scalar_trace, name


@settings(deadline=None, max_examples=40)
@given(
    graded_databases(),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=2),
    st.sampled_from(("array", "list")),
)
def test_vector_kernel_is_byte_identical(database, rule_index, selector, backend):
    table, m = database
    rule = pick_rule(m, rule_index)
    k = pick_k(table, selector)
    for name, algorithm in ALGORITHMS:
        scalar, scalar_trace = run_once(algorithm, table, rule, k, backend, "scalar")
        vector, vector_trace = run_once(algorithm, table, rule, k, backend, "vector")
        assert_identical(name, scalar, vector, scalar_trace, vector_trace)
        # the untraced vector path (TA's bulk super-round, no per-access
        # events) must produce the same answers and charges
        untraced, _ = run_once(
            algorithm, table, rule, k, backend, "vector", traced=False
        )
        assert_identical(f"{name}/untraced", scalar, untraced, None, None)


@settings(deadline=None, max_examples=8)
@given(graded_databases(min_m=2), st.integers(min_value=0, max_value=4))
def test_kernels_and_workers_commute(database, rule_index):
    """kernel x workers {1,4}: all four runs produce the same bytes."""
    table, m = database
    rule = pick_rule(m, rule_index)
    k = min(len(table), 5)
    for name, algorithm in ALGORITHMS:
        baseline, baseline_trace = run_once(
            algorithm, table, rule, k, "array", "scalar", workers=1
        )
        for kernel in ("scalar", "vector"):
            for workers in (1, 4):
                result, trace = run_once(
                    algorithm, table, rule, k, "array", kernel, workers=workers
                )
                label = f"{name}/{kernel}/workers={workers}"
                assert_identical(label, baseline, result, baseline_trace, trace)


@settings(deadline=None, max_examples=20)
@given(graded_databases(), st.integers(min_value=0, max_value=4))
def test_auto_kernel_matches_forced_kernels(database, rule_index):
    """auto resolves to one of the two and therefore agrees with both."""
    table, m = database
    rule = pick_rule(m, rule_index)
    k = min(len(table), 4)
    for backend in ("array", "list"):
        scalar, scalar_trace = run_once(run_nra, table, rule, k, backend, "scalar")
        auto, auto_trace = run_once(run_nra, table, rule, k, backend, "auto")
        assert_identical("nra/auto", scalar, auto, scalar_trace, auto_trace)


# ---------------------------------------------------------------------------
# resolve_kernel / configure_kernel


def _array_sources():
    return sources_from_columns({"a": [0.5, 0.2], "b": [0.1, 0.9]}, backend="array")


def _list_sources():
    return sources_from_columns({"a": [0.5, 0.2], "b": [0.1, 0.9]}, backend="list")


def test_auto_picks_vector_for_columnar_batch_exact():
    assert resolve_kernel("auto", _array_sources(), tnorms.MIN) == "vector"


def test_auto_falls_back_for_item_backed_sources():
    assert resolve_kernel("auto", _list_sources(), tnorms.MIN) == "scalar"


def test_auto_falls_back_for_non_batch_exact_rules():
    assert not means.GEOMETRIC_MEAN.batch_exact
    assert resolve_kernel("auto", _array_sources(), means.GEOMETRIC_MEAN) == "scalar"


def test_auto_falls_back_for_wrapped_sources():
    clock = VirtualClock()
    wrapped = [
        FaultInjectingSource(source, FaultProfile(), clock=clock)
        for source in _array_sources()
    ]
    assert resolve_kernel("auto", wrapped, tnorms.MIN) == "scalar"


def test_forced_kernels_resolve_anywhere():
    assert resolve_kernel("vector", _list_sources(), means.GEOMETRIC_MEAN) == "vector"
    assert resolve_kernel("scalar", _array_sources(), tnorms.MIN) == "scalar"


def test_unknown_kernel_name_rejected():
    with pytest.raises(ReproError):
        resolve_kernel("simd", _array_sources(), tnorms.MIN)
    with pytest.raises(ReproError):
        configure_kernel("simd")


def test_configure_kernel_sets_the_default():
    assert default_kernel() == "auto"
    try:
        assert configure_kernel("scalar") == "scalar"
        assert default_kernel() == "scalar"
        assert resolve_kernel(None, _array_sources(), tnorms.MIN) == "scalar"
        configure_kernel("vector")
        assert resolve_kernel(None, _list_sources(), means.GEOMETRIC_MEAN) == "vector"
    finally:
        configure_kernel("auto")
    assert resolve_kernel(None, _array_sources(), tnorms.MIN) == "vector"


def test_forced_vector_result_matches_scalar_on_non_exact_rule():
    """Forcing vector on a non-batch-exact rule is allowed; answers agree
    to 1e-12 even though auto would decline the pairing."""
    table = {f"o{i:02d}": [((i * 7) % 10) / 10.0, ((i * 3) % 10) / 10.0]
             for i in range(12)}
    scalar, _ = run_once(run_nra, table, means.GEOMETRIC_MEAN, 4, "array", "scalar")
    vector, _ = run_once(run_nra, table, means.GEOMETRIC_MEAN, 4, "array", "vector")
    assert [item.object_id for item in vector.answers] == [
        item.object_id for item in scalar.answers
    ]
    for ours, theirs in zip(vector.answers, scalar.answers):
        assert ours.grade == pytest.approx(theirs.grade, abs=1e-12)


# ---------------------------------------------------------------------------
# Degradation parity: kernels make the same fallback decisions.

K = 8


def faulty_sources(profile, only, n=200, m=3, seed=11):
    clock = VirtualClock()
    sources = sources_from_columns(independent(n, m, seed=seed))
    return [
        FaultInjectingSource(source, profile, clock=clock) if j in only else source
        for j, source in enumerate(sources)
    ]


def run_degraded(algorithm, profile, only, kernel, **kwargs):
    tracer = QueryTracer()
    result = algorithm(
        faulty_sources(profile, only), tnorms.MIN, K, tracer=tracer,
        kernel=kernel, **kwargs,
    )
    return result, tracer.to_json()


def assert_degraded_identical(scalar, vector, scalar_trace, vector_trace):
    __tracebackhide__ = True
    assert vector.algorithm == scalar.algorithm
    assert [
        (item.object_id, item.grade) for item in vector.answers
    ] == [(item.object_id, item.grade) for item in scalar.answers]
    assert vector.cost == scalar.cost
    assert (vector.degraded is None) == (scalar.degraded is None)
    if scalar.degraded is not None:
        assert vector.degraded.complete == scalar.degraded.complete
        assert vector.degraded.fallback == scalar.degraded.fallback
        assert vector.degraded.failed_sources == scalar.degraded.failed_sources
        assert vector.degraded.bounds == scalar.degraded.bounds
    assert vector_trace == scalar_trace


@pytest.mark.parametrize("algorithm", (threshold_top_k, fagin_top_k))
def test_random_access_death_degrades_identically(algorithm):
    profile = FaultProfile(break_random_after=5)
    scalar, scalar_trace = run_degraded(algorithm, profile, {2}, "scalar")
    vector, vector_trace = run_degraded(algorithm, profile, {2}, "vector")
    assert scalar.degraded is not None and scalar.degraded.complete
    assert_degraded_identical(scalar, vector, scalar_trace, vector_trace)


@pytest.mark.parametrize(
    "algorithm, kwargs",
    ((threshold_top_k, {}), (nra_top_k, {"batch_size": 16})),
)
def test_total_source_death_degrades_identically(algorithm, kwargs):
    profile = FaultProfile(kill_after=40)
    scalar, scalar_trace = run_degraded(algorithm, profile, {2}, "scalar", **kwargs)
    vector, vector_trace = run_degraded(algorithm, profile, {2}, "vector", **kwargs)
    assert scalar.degraded is not None
    assert_degraded_identical(scalar, vector, scalar_trace, vector_trace)


def test_a0_propagates_total_death_identically():
    """A0 treats a dead sorted stream as fatal on both kernels (only
    random-access loss degrades); the error must not depend on kernel."""
    from repro.errors import TransientAccessError

    profile = FaultProfile(kill_after=40)
    messages = []
    for kernel in ("scalar", "vector"):
        with pytest.raises(TransientAccessError) as excinfo:
            run_degraded(fagin_top_k, profile, {2}, kernel)
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]


def test_a0_paging_after_degradation_matches_across_kernels():
    profile = FaultProfile(break_random_after=5)
    handles = [
        FaginAlgorithm(faulty_sources(profile, {2}), tnorms.MIN, kernel=kernel)
        for kernel in ("scalar", "vector")
    ]
    for _ in range(3):
        scalar_page, vector_page = (handle.next_k(4) for handle in handles)
        assert [
            (item.object_id, item.grade) for item in vector_page.answers
        ] == [(item.object_id, item.grade) for item in scalar_page.answers]
        assert vector_page.cost == scalar_page.cost


# ---------------------------------------------------------------------------
# stop_check_growth (satellite): the documented doubling schedule.


def nra_depth(growth, kernel="scalar", n=120, m=3, seed=3):
    sources = sources_from_columns(independent(n, m, seed=seed))
    result = nra_top_k(
        sources, tnorms.MIN, 5, batch_size=1, stop_check_growth=growth,
        kernel=kernel,
    )
    return result


@pytest.mark.parametrize("growth", (0.0, 0.5, 0.999, -1.0))
def test_stop_check_growth_below_one_rejected(growth):
    with pytest.raises(ValueError):
        nra_depth(growth)


@pytest.mark.parametrize("seed", (0, 1, 2, 3, 4))
def test_stop_check_growth_overshoot_bound(seed):
    """growth=1 checks the stop test every round and therefore stops at
    the minimal depth d*; a schedule with factor g can overshoot the
    last pre-d* check by at most a factor of g: depth <= g*d* + 1."""
    minimal = nra_depth(1.0, seed=seed).sorted_depth
    for growth in (1.5, 2.0, 4.0):
        depth = nra_depth(growth, seed=seed).sorted_depth
        assert minimal <= depth <= int(growth * minimal) + 1, (growth, minimal, depth)


def test_stop_check_growth_default_is_doubling():
    sources = sources_from_columns(independent(120, 3, seed=3))
    default = nra_top_k(sources, tnorms.MIN, 5, batch_size=1)
    assert default.sorted_depth == nra_depth(2.0).sorted_depth
    assert [(i.object_id, i.grade) for i in default.answers] == [
        (i.object_id, i.grade) for i in nra_depth(2.0).answers
    ]


@pytest.mark.parametrize("growth", (1.0, 1.5, 2.0, 4.0))
def test_stop_check_growth_answers_and_kernels_agree(growth):
    scalar = nra_depth(growth, kernel="scalar")
    vector = nra_depth(growth, kernel="vector")
    truth = nra_depth(1.0)
    assert [(i.object_id, i.grade) for i in scalar.answers] == [
        (i.object_id, i.grade) for i in truth.answers
    ]
    assert vector.sorted_depth == scalar.sorted_depth
    assert vector.cost == scalar.cost
    assert [(i.object_id, i.grade) for i in vector.answers] == [
        (i.object_id, i.grade) for i in scalar.answers
    ]


# ---------------------------------------------------------------------------
# Engine plumbing: configure_kernel and per-query override.


def build_engine(n=40):
    from repro.middleware.list_subsystem import ListSubsystem
    from repro.middleware.engine import MiddlewareEngine
    import random

    rng = random.Random(9)
    engine = MiddlewareEngine()
    qbic = ListSubsystem("qbic")
    qbic.add_list("Color", "red", {f"g{i}": rng.random() for i in range(n)})
    qbic.add_list("Shape", "round", {f"g{i}": rng.random() for i in range(n)})
    engine.register(qbic)
    return engine


def test_engine_configure_kernel_validates_and_sticks():
    engine = build_engine()
    assert engine.kernel is None
    assert engine.configure_kernel("vector") == "vector"
    assert engine.kernel == "vector"
    with pytest.raises(ReproError):
        engine.configure_kernel("simd")


def test_engine_kernel_results_identical():
    from repro.core.query import Atomic

    query = Atomic("Color", "red") & Atomic("Shape", "round")
    baseline = build_engine().top_k(query, 5)
    pairs = [(item.object_id, item.grade) for item in baseline.answers]
    for kernel in ("auto", "vector", "scalar"):
        session = build_engine()
        session.configure_kernel(kernel)
        result = session.top_k(query, 5)
        assert [(i.object_id, i.grade) for i in result.answers] == pairs
        assert result.cost == baseline.cost
        # per-query override beats the session default
        override = session.top_k(query, 5, kernel="scalar")
        assert [(i.object_id, i.grade) for i in override.answers] == pairs


def test_cli_kernel_flag_round_trips(capsys):
    from repro.cli import main

    outputs = []
    for kernel in ("scalar", "vector"):
        assert main(["sql", "--size", "50", "-k", "3", "--kernel", kernel,
                     "SELECT * FROM albums WHERE AlbumColor = 'red' "
                     "STOP AFTER 3"]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]
