"""A0's random-access pruning improvement (section 4.1's remark)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fagin import FaginAlgorithm, fagin_top_k
from repro.core.graded import GradedSet
from repro.core.naive import grade_everything
from repro.core.sources import sources_from_columns
from repro.scoring import means, tnorms
from repro.workloads.graded_lists import anti_correlated, correlated, independent

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@pytest.mark.parametrize("rule", [tnorms.MIN, tnorms.PRODUCT, means.MEAN],
                         ids=lambda r: r.name)
@pytest.mark.parametrize("maker", [independent, correlated, anti_correlated],
                         ids=["independent", "correlated", "anti-correlated"])
def test_pruned_matches_oracle(rule, maker):
    table = maker(600, 2, seed=3)
    result = fagin_top_k(
        sources_from_columns(table), rule, 10, prune_random_access=True
    )
    oracle = grade_everything(sources_from_columns(table), rule).top(10)
    assert result.answers.same_grade_multiset(oracle)


def test_pruning_never_increases_cost():
    for seed in range(5):
        table = independent(1500, 2, seed=seed)
        plain = fagin_top_k(sources_from_columns(table), tnorms.MIN, 10)
        pruned = fagin_top_k(
            sources_from_columns(table), tnorms.MIN, 10, prune_random_access=True
        )
        assert pruned.database_access_cost <= plain.database_access_cost
        assert pruned.answers.same_grade_multiset(plain.answers)


def test_min_rule_prunes_most_random_accesses():
    """For min the upper bound is tight, so the improvement eliminates
    nearly all of phase 2 on independent lists."""
    table = independent(3000, 2, seed=1)
    plain = fagin_top_k(sources_from_columns(table), tnorms.MIN, 10)
    pruned = fagin_top_k(
        sources_from_columns(table), tnorms.MIN, 10, prune_random_access=True
    )
    assert pruned.cost.random_access_cost < plain.cost.random_access_cost / 4


def test_emitted_grades_are_exact():
    table = independent(800, 2, seed=6)
    pruned = fagin_top_k(
        sources_from_columns(table), tnorms.MIN, 5, prune_random_access=True
    )
    truth = grade_everything(sources_from_columns(table), tnorms.MIN)
    for item in pruned.answers:
        assert item.grade == pytest.approx(truth[item.object_id])


def test_resumable_with_pruning():
    table = independent(1200, 2, seed=7)
    algorithm = FaginAlgorithm(
        sources_from_columns(table), tnorms.MIN, prune_random_access=True
    )
    first = algorithm.next_k(6)
    second = algorithm.next_k(6)
    combined = GradedSet(first.answers.as_dict() | second.answers.as_dict())
    oracle = grade_everything(sources_from_columns(table), tnorms.MIN).top(12)
    assert combined.same_grade_multiset(oracle)
    assert not set(first.answers.objects()) & set(second.answers.objects())


@given(
    table=st.dictionaries(
        st.integers(min_value=0, max_value=10_000),
        st.tuples(grades, grades),
        min_size=1,
        max_size=40,
    ),
    k=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_pruned_property_matches_naive(table, k):
    expected = grade_everything(sources_from_columns(table), tnorms.MIN).top(k)
    result = fagin_top_k(
        sources_from_columns(table), tnorms.MIN, k, prune_random_access=True
    )
    assert result.answers.same_grade_multiset(expected)


@given(
    table=st.dictionaries(
        st.integers(min_value=0, max_value=10_000),
        st.tuples(grades, grades, grades),
        min_size=1,
        max_size=30,
    ),
    k=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_pruned_property_m3_mean(table, k):
    expected = grade_everything(sources_from_columns(table), means.MEAN).top(k)
    result = fagin_top_k(
        sources_from_columns(table), means.MEAN, k, prune_random_access=True
    )
    assert result.answers.same_grade_multiset(expected)
