"""TA and NRA: correctness, dominance over A0, sorted-only operation."""

import pytest

from repro.core.fagin import fagin_top_k
from repro.core.naive import grade_everything
from repro.core.sources import SortedOnlySource, sources_from_columns
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.errors import MonotonicityError
from repro.scoring import means, tnorms
from repro.scoring.base import FunctionScoring
from repro.workloads.graded_lists import anti_correlated, correlated, independent


def oracle(sources, scoring, k):
    return grade_everything(sources, scoring).top(k)


@pytest.mark.parametrize("scoring", [tnorms.MIN, tnorms.PRODUCT, means.MEAN],
                         ids=lambda s: s.name)
def test_ta_matches_oracle(scoring, independent_sources):
    result = threshold_top_k(independent_sources, scoring, 10)
    assert result.answers.same_grade_multiset(
        oracle(independent_sources, scoring, 10)
    )


@pytest.mark.parametrize("scoring", [tnorms.MIN, tnorms.PRODUCT, means.MEAN],
                         ids=lambda s: s.name)
def test_nra_matches_oracle(scoring, independent_sources):
    result = nra_top_k(independent_sources, scoring, 10)
    assert result.answers.same_grade_multiset(
        oracle(independent_sources, scoring, 10)
    )
    assert result.grades_exact


def test_ta_matches_oracle_m3(independent_sources_m3):
    result = threshold_top_k(independent_sources_m3, tnorms.MIN, 5)
    assert result.answers.same_grade_multiset(
        oracle(independent_sources_m3, tnorms.MIN, 5)
    )


def test_nra_matches_oracle_m3(independent_sources_m3):
    result = nra_top_k(independent_sources_m3, tnorms.MIN, 5)
    assert result.answers.same_grade_multiset(
        oracle(independent_sources_m3, tnorms.MIN, 5)
    )


@pytest.mark.parametrize("maker,label", [
    (lambda: independent(800, 2, seed=5), "independent"),
    (lambda: correlated(800, 2, seed=5), "correlated"),
    (lambda: anti_correlated(800, 2, seed=5), "anti-correlated"),
], ids=["independent", "correlated", "anti-correlated"])
def test_ta_never_does_more_sorted_access_than_a0(maker, label):
    """TA stops at or before A0's depth on every instance (the
    instance-optimality the 'various improvements' remark foreshadows)."""
    table = maker()
    a0 = fagin_top_k(sources_from_columns(table), tnorms.MIN, 10)
    ta = threshold_top_k(sources_from_columns(table), tnorms.MIN, 10)
    assert ta.sorted_depth <= a0.sorted_depth
    assert ta.answers.same_grade_multiset(a0.answers)


def test_nra_uses_no_random_access(independent_sources):
    result = nra_top_k(independent_sources, tnorms.MIN, 10)
    assert result.cost.random_access_cost == 0


def test_nra_works_on_sorted_only_sources():
    table = independent(300, 2, seed=8)
    sources = [SortedOnlySource(s) for s in sources_from_columns(table)]
    result = nra_top_k(sources, tnorms.MIN, 5)
    expected = oracle(sources_from_columns(table), tnorms.MIN, 5)
    assert result.answers.same_grade_multiset(expected)


def test_ta_requires_monotone(tiny_sources):
    bad = FunctionScoring(lambda g: 1 - min(g), "bad", is_monotone=False)
    with pytest.raises(MonotonicityError):
        threshold_top_k(tiny_sources, bad, 1)
    with pytest.raises(MonotonicityError):
        nra_top_k(tiny_sources, bad, 1)


def test_k_capped(tiny_sources):
    assert len(threshold_top_k(tiny_sources, tnorms.MIN, 99).answers) == 3
    assert len(nra_top_k(tiny_sources, tnorms.MIN, 99).answers) == 3


def test_k_validation(tiny_sources):
    with pytest.raises(ValueError):
        threshold_top_k(tiny_sources, tnorms.MIN, 0)
    with pytest.raises(ValueError):
        nra_top_k(tiny_sources, tnorms.MIN, 0)


def test_nra_inexact_mode_still_finds_the_right_set(independent_sources):
    result = nra_top_k(independent_sources, tnorms.MIN, 10, exact_grades=False)
    expected = oracle(independent_sources, tnorms.MIN, 10)
    assert set(result.answers.objects()) <= set(
        grade_everything(independent_sources, tnorms.MIN).top(30).objects()
    )
    # the chosen set is a valid top-k set: its true grades match the oracle's
    truth = grade_everything(independent_sources, tnorms.MIN)
    true_grades = sorted((truth[o] for o in result.answers.objects()), reverse=True)
    oracle_grades = sorted((i.grade for i in expected), reverse=True)
    assert true_grades == pytest.approx(oracle_grades)
