"""The m*k max algorithm: correctness, exact grades, N-independent cost."""

import pytest

from repro.core.disjunction import disjunction_top_k
from repro.core.naive import grade_everything
from repro.core.sources import sources_from_columns
from repro.scoring import conorms
from repro.workloads.graded_lists import anti_correlated, independent


def oracle(sources, k):
    return grade_everything(sources, conorms.MAX).top(k)


def test_matches_oracle(independent_sources):
    result = disjunction_top_k(independent_sources, 10)
    assert result.answers.same_grade_multiset(oracle(independent_sources, 10))


def test_matches_oracle_m3(independent_sources_m3):
    result = disjunction_top_k(independent_sources_m3, 6)
    assert result.answers.same_grade_multiset(oracle(independent_sources_m3, 6))


def test_emitted_grades_are_exact_overall_grades(independent_sources):
    """The subtle claim: the seen-maximum equals the true max for every
    emitted object."""
    result = disjunction_top_k(independent_sources, 10)
    truth = grade_everything(independent_sources, conorms.MAX)
    for item in result.answers:
        assert item.grade == pytest.approx(truth[item.object_id])


def test_cost_is_exactly_m_times_k_and_independent_of_n():
    for n in (100, 1000, 4000):
        sources = sources_from_columns(independent(n, 2, seed=n))
        result = disjunction_top_k(sources, 10)
        assert result.database_access_cost == 2 * 10
        assert result.cost.random_access_cost == 0


def test_cost_scales_with_m():
    for m in (2, 3, 4):
        sources = sources_from_columns(independent(200, m, seed=m))
        result = disjunction_top_k(sources, 7)
        assert result.database_access_cost == m * 7


def test_correct_on_anti_correlated_lists():
    sources = sources_from_columns(anti_correlated(300, 2, seed=9))
    result = disjunction_top_k(sources, 10)
    assert result.answers.same_grade_multiset(oracle(sources, 10))


def test_k_capped_at_database_size(tiny_sources):
    result = disjunction_top_k(tiny_sources, 99)
    assert len(result.answers) == 3
    assert result.database_access_cost == 2 * 3


def test_k_validation(tiny_sources):
    with pytest.raises(ValueError):
        disjunction_top_k(tiny_sources, -1)
