"""Batched sorted access: charging semantics and the latency trade-off."""

import pytest

from repro.core.batching import BatchedSource, LatencyModel, batched
from repro.core.fagin import fagin_top_k
from repro.core.sources import ListSource, sources_from_columns
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent


def source_of(n=20, seed=0):
    table = independent(n, 1, seed=seed)
    return ListSource({k: v[0] for k, v in table.items()}, name="L")


def test_batch_size_validated():
    with pytest.raises(ValueError):
        BatchedSource(source_of(), 0)


def test_reading_one_item_pays_for_the_whole_batch():
    batched_source = BatchedSource(source_of(20), 10)
    cursor = batched_source.cursor()
    cursor.next()
    assert batched_source.counter.sorted_accesses == 10
    assert batched_source.requests == 1
    assert batched_source.fetched == 10


def test_items_within_the_window_are_free():
    batched_source = BatchedSource(source_of(20), 10)
    cursor = batched_source.cursor()
    for _ in range(10):
        cursor.next()
    assert batched_source.counter.sorted_accesses == 10
    cursor.next()  # crosses into the second batch
    assert batched_source.counter.sorted_accesses == 20
    assert batched_source.requests == 2


def test_last_batch_is_truncated_at_database_size():
    batched_source = BatchedSource(source_of(13), 10)
    cursor = batched_source.cursor()
    for _ in range(13):
        assert cursor.next() is not None
    assert cursor.next() is None
    assert batched_source.fetched == 13
    assert batched_source.counter.sorted_accesses == 13
    assert batched_source.requests == 2


def test_window_is_shared_across_cursors():
    batched_source = BatchedSource(source_of(20), 10)
    first = batched_source.cursor()
    second = batched_source.cursor()
    first.next()
    second.next()  # inside the already-fetched window: free
    assert batched_source.counter.sorted_accesses == 10


def test_batch_size_one_is_the_plain_model():
    plain = source_of(20, seed=1)
    batched_source = BatchedSource(source_of(20, seed=1), 1)
    cursor_a = plain.cursor()
    cursor_b = batched_source.cursor()
    for _ in range(7):
        cursor_a.next()
        cursor_b.next()
    assert plain.counter.sorted_accesses == batched_source.counter.sorted_accesses


def test_random_access_passes_through():
    inner = source_of(10)
    batched_source = BatchedSource(inner, 5)
    object_id = next(iter(inner.as_graded_set().objects()))
    grade = batched_source.random_access(object_id)
    assert grade == inner.as_graded_set()[object_id]
    assert batched_source.counter.random_accesses == 1


def test_materialization_stays_accounting_free():
    batched_source = BatchedSource(source_of(10), 5)
    batched_source.as_graded_set()
    list(batched_source.object_ids())
    assert batched_source.counter.database_access_cost == 0
    assert batched_source.requests == 0


def test_fagin_is_correct_over_batched_sources():
    table = independent(1000, 2, seed=3)
    plain_result = fagin_top_k(sources_from_columns(table), tnorms.MIN, 10)
    batched_sources = batched(sources_from_columns(table), 50)
    result = fagin_top_k(batched_sources, tnorms.MIN, 10)
    assert result.answers.same_grade_multiset(plain_result.answers)
    # batching can only add overshoot, never reduce items fetched
    assert result.database_access_cost >= plain_result.database_access_cost


def test_latency_model_trade_off():
    """Large batches lose under the uniform measure but win when round
    trips dominate — the concrete version of the paper's cost-measure
    discussion."""
    table = independent(2000, 2, seed=4)
    per_item = {}
    per_latency = {}
    model = LatencyModel(request_charge=50.0, item_charge=1.0)
    for batch_size in (1, 100):
        sources = batched(sources_from_columns(table), batch_size)
        result = fagin_top_k(sources, tnorms.MIN, 10)
        per_item[batch_size] = result.database_access_cost
        per_latency[batch_size] = sum(model.cost_of(s) for s in sources)
    assert per_item[1] <= per_item[100]       # uniform measure: small batches
    assert per_latency[100] < per_latency[1]  # latency measure: big batches


def test_latency_model_prices_random_probes_as_round_trips():
    batched_source = BatchedSource(source_of(10), 5)
    object_id = next(iter(batched_source.as_graded_set().objects()))
    batched_source.random_access(object_id)
    model = LatencyModel(request_charge=10.0, item_charge=1.0)
    assert model.cost_of(batched_source) == pytest.approx(11.0)
