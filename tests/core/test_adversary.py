"""The linear-lower-bound adversarial instance (section 6 remark)."""

import pytest

from repro.core.adversary import (
    expected_best_object,
    hard_instance,
    minimum_depth_for_top_one,
    reversed_grades,
)
from repro.core.fagin import fagin_top_k
from repro.core.naive import grade_everything
from repro.core.threshold import threshold_top_k
from repro.scoring import tnorms


def test_grades_are_strictly_decreasing_and_reversed():
    pairs = reversed_grades(9)
    first = [p[0] for p in pairs]
    second = [p[1] for p in pairs]
    assert first == sorted(first, reverse=True)
    assert second == sorted(second)
    assert first == list(reversed(second))


def test_grades_stay_inside_open_interval():
    pairs = reversed_grades(5, low=0.5, high=1.0)
    for a, b in pairs:
        assert 0.5 < a < 1.0
        assert 0.5 < b < 1.0


def test_best_object_is_the_middle_one():
    for n in (5, 6, 101, 100):
        sources = hard_instance(n)
        truth = grade_everything(sources, tnorms.MIN)
        assert truth.best().object_id == expected_best_object(n)


def test_fagin_needs_linear_depth():
    for n in (51, 201, 801):
        result = fagin_top_k(hard_instance(n), tnorms.MIN, 1)
        assert result.sorted_depth >= minimum_depth_for_top_one(n)
        assert result.answers.best().object_id == expected_best_object(n)


def test_ta_also_needs_linear_depth():
    for n in (51, 201):
        result = threshold_top_k(hard_instance(n), tnorms.MIN, 1)
        assert result.sorted_depth >= minimum_depth_for_top_one(n) - 1
        assert result.answers.best().object_id == expected_best_object(n)


def test_cost_grows_linearly():
    costs = {
        n: fagin_top_k(hard_instance(n), tnorms.MIN, 1).database_access_cost
        for n in (200, 400, 800)
    }
    # doubling n roughly doubles the cost
    assert costs[400] / costs[200] == pytest.approx(2.0, rel=0.2)
    assert costs[800] / costs[400] == pytest.approx(2.0, rel=0.2)


def test_validation():
    with pytest.raises(ValueError):
        reversed_grades(0)
    with pytest.raises(ValueError):
        reversed_grades(5, low=0.9, high=0.5)
