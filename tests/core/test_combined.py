"""The combined algorithm (CA): correctness and the cost-ratio trade-off."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost import RANDOM_EXPENSIVE
from repro.core.naive import grade_everything
from repro.core.sources import sources_from_columns
from repro.core.threshold import combined_top_k, threshold_top_k
from repro.errors import MonotonicityError
from repro.scoring import means, tnorms
from repro.scoring.base import FunctionScoring
from repro.workloads.graded_lists import anti_correlated, correlated, independent

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def oracle(table, rule, k):
    return grade_everything(sources_from_columns(table), rule).top(k)


@pytest.mark.parametrize("rule", [tnorms.MIN, tnorms.PRODUCT, means.MEAN],
                         ids=lambda r: r.name)
@pytest.mark.parametrize("maker", [independent, correlated, anti_correlated],
                         ids=["independent", "correlated", "anti-correlated"])
def test_ca_matches_oracle(rule, maker):
    table = maker(500, 2, seed=9)
    result = combined_top_k(sources_from_columns(table), rule, 10, ratio=5)
    assert result.answers.same_grade_multiset(oracle(table, rule, 10))


def test_ca_matches_oracle_m3():
    table = independent(400, 3, seed=4)
    result = combined_top_k(sources_from_columns(table), tnorms.MIN, 7, ratio=4)
    assert result.answers.same_grade_multiset(oracle(table, tnorms.MIN, 7))


def test_ca_spends_far_fewer_random_accesses_than_ta():
    table = independent(2000, 2, seed=5)
    ca = combined_top_k(sources_from_columns(table), tnorms.MIN, 10, ratio=10)
    ta = threshold_top_k(sources_from_columns(table), tnorms.MIN, 10)
    assert ca.cost.random_access_cost < ta.cost.random_access_cost / 3


def test_ca_wins_under_random_expensive_charges():
    """The point of CA: when random probes cost 10x, trading a few extra
    sorted rounds for far fewer probes wins overall."""
    table = independent(2000, 2, seed=5)
    ca = combined_top_k(sources_from_columns(table), tnorms.MIN, 10, ratio=10)
    ta = threshold_top_k(sources_from_columns(table), tnorms.MIN, 10)
    assert ca.cost.cost(RANDOM_EXPENSIVE) < ta.cost.cost(RANDOM_EXPENSIVE)


def test_ratio_validation_and_monotone_guard():
    table = independent(50, 2, seed=1)
    with pytest.raises(ValueError):
        combined_top_k(sources_from_columns(table), tnorms.MIN, 5, ratio=0.5)
    with pytest.raises(ValueError):
        combined_top_k(sources_from_columns(table), tnorms.MIN, 0)
    bad = FunctionScoring(lambda g: 1 - min(g), "bad", is_monotone=False)
    with pytest.raises(MonotonicityError):
        combined_top_k(sources_from_columns(table), bad, 5)


def test_k_capped(tiny_sources):
    result = combined_top_k(tiny_sources, tnorms.MIN, 99)
    assert len(result.answers) == 3


@given(
    table=st.dictionaries(
        st.integers(min_value=0, max_value=10_000),
        st.tuples(grades, grades),
        min_size=1,
        max_size=40,
    ),
    k=st.integers(min_value=1, max_value=10),
    ratio=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_ca_property_matches_naive(table, k, ratio):
    expected = grade_everything(sources_from_columns(table), tnorms.MIN).top(k)
    result = combined_top_k(
        sources_from_columns(table), tnorms.MIN, k, ratio=ratio
    )
    assert result.answers.same_grade_multiset(expected)
