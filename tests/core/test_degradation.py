"""Graceful degradation: TA/A0 fall back to NRA when random access dies,
and return bounded partial answers when sorted streams die too."""

import pytest

from repro.core.fagin import FaginAlgorithm, fagin_top_k
from repro.core.planner import Strategy, plan_top_k
from repro.core.sources import sources_from_columns
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.errors import TransientAccessError
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.resilience import (
    ResiliencePolicy,
    ResilientSource,
    RetryPolicy,
    VirtualClock,
)
from repro.scoring.tnorms import MIN
from repro.workloads.graded_lists import independent

K = 10


def build(n=300, m=3, seed=7, profile=None, only=None, policy=None):
    clock = VirtualClock()
    sources = sources_from_columns(independent(n, m, seed=seed))
    wrapped = []
    for j, source in enumerate(sources):
        if profile is not None and (only is None or j in only):
            source = FaultInjectingSource(source, profile, clock=clock)
        if policy is not None:
            source = ResilientSource(source, policy, clock=clock)
        wrapped.append(source)
    return wrapped


def answers_of(result):
    return [(item.object_id, item.grade) for item in result.answers]


@pytest.fixture(scope="module")
def truth():
    return threshold_top_k(build(), MIN, K)


def test_ta_falls_back_to_nra_when_random_access_dies(truth):
    sources = build(profile=FaultProfile(break_random_after=5), only={2})
    result = threshold_top_k(sources, MIN, K)
    assert result.algorithm == "threshold-ta+nra"
    assert answers_of(result) == answers_of(truth)
    assert result.degraded is not None
    assert result.degraded.complete
    assert result.degraded.fallback == "nra-sorted-only"
    assert len(result.degraded.failed_sources) == 1
    # the bounds of a complete fallback pinch the exact grades
    for object_id, grade in answers_of(result):
        low, high = result.degraded.bounds[object_id]
        assert low <= grade + 1e-9 and grade - 1e-9 <= high


def test_ta_degrade_off_propagates_the_failure(truth):
    sources = build(profile=FaultProfile(break_random_after=5), only={2})
    with pytest.raises(TransientAccessError):
        threshold_top_k(sources, MIN, K, degrade=False)


def test_a0_falls_back_to_nra_when_random_access_dies(truth):
    sources = build(profile=FaultProfile(break_random_after=5), only={2})
    result = fagin_top_k(sources, MIN, K)
    assert result.algorithm == "fagin-a0+nra"
    assert answers_of(result) == answers_of(truth)
    assert result.degraded is not None and result.degraded.complete


def test_a0_degrade_off_propagates_the_failure():
    sources = build(profile=FaultProfile(break_random_after=5), only={2})
    with pytest.raises(TransientAccessError):
        fagin_top_k(sources, MIN, K, degrade=False)


def test_a0_handle_keeps_paging_after_degradation(truth):
    """Incremental fetches stay correct across the fallback boundary."""
    clean = FaginAlgorithm(build(), MIN)
    faulty = FaginAlgorithm(
        build(profile=FaultProfile(break_random_after=5), only={2}), MIN
    )
    first_clean, first_faulty = clean.next_k(5), faulty.next_k(5)
    assert answers_of(first_faulty) == answers_of(first_clean)
    second_clean, second_faulty = clean.next_k(5), faulty.next_k(5)
    assert answers_of(second_faulty) == answers_of(second_clean)


def test_total_source_death_yields_bounded_partial(truth):
    sources = build(profile=FaultProfile(kill_after=50), only={2})
    result = threshold_top_k(sources, MIN, K)
    assert result.algorithm == "threshold-ta+nra"
    assert len(result.answers) == K
    assert not result.grades_exact
    degraded = result.degraded
    assert degraded is not None
    assert degraded.fallback == "partial-bounds"
    assert not degraded.complete
    # the reported bounds must bracket each answer's true overall grade
    exact = {
        obj: grade
        for obj, grade in (
            (item.object_id, item.grade)
            for item in threshold_top_k(build(), MIN, len(build()[0])).answers
        )
    }
    for item in result.answers:
        low, high = degraded.bounds[item.object_id]
        assert low - 1e-9 <= exact[item.object_id] <= high + 1e-9


def test_source_dead_from_the_start_still_returns_answers():
    sources = build(profile=FaultProfile(kill_after=0), only={2})
    result = threshold_top_k(sources, MIN, K)
    assert len(result.answers) == K
    assert result.degraded is not None and not result.degraded.complete


def test_nra_survives_mid_stream_sorted_death():
    sources = build(profile=FaultProfile(kill_after=40), only={1})
    result = nra_top_k(sources, MIN, K)
    assert len(result.answers) == K
    assert result.degraded is not None
    assert any("dead" in why for why in result.degraded.failed_sources.values())


def test_planner_routes_around_an_open_random_circuit():
    policy = ResiliencePolicy(retry=RetryPolicy(max_attempts=1), failure_threshold=1)
    sources = build(
        profile=FaultProfile(break_random_after=0), policy=policy
    )
    # trip one source's random breaker the way a prior query would
    with pytest.raises(TransientAccessError):
        sources[0].random_access(next(iter(sources[0].cursor().peek_batch(1))).object_id)
    assert not sources[0].random_access_available()
    plan = plan_top_k(sources, MIN, K)
    assert plan.strategy in (Strategy.NRA, Strategy.NAIVE)
    assert plan.strategy is Strategy.NRA  # cheaper of the two here
