"""Cross-algorithm agreement: hypothesis-driven randomized instances.

The strongest correctness evidence in the suite: on arbitrary grade
tables, every sublinear algorithm must return a top-k answer whose grade
multiset matches the exhaustive oracle's, for every monotone rule.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.disjunction import disjunction_top_k
from repro.core.fagin import fagin_top_k
from repro.core.filter_condition import filter_condition_top_k
from repro.core.naive import grade_everything
from repro.core.sources import sources_from_columns
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.scoring import conorms, means, tnorms

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def tables(m, min_objects=1):
    return st.dictionaries(
        st.integers(min_value=0, max_value=10_000),
        st.tuples(*([grades] * m)),
        min_size=min_objects,
        max_size=40,
    )


RULES = [tnorms.MIN, tnorms.PRODUCT, means.MEAN]


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.name)
@given(table=tables(2), k=st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None)
def test_fagin_agrees_with_naive(rule, table, k):
    expected = grade_everything(sources_from_columns(table), rule).top(k)
    result = fagin_top_k(sources_from_columns(table), rule, k)
    assert result.answers.same_grade_multiset(expected)


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.name)
@given(table=tables(3), k=st.integers(min_value=1, max_value=10))
@settings(max_examples=25, deadline=None)
def test_ta_agrees_with_naive_m3(rule, table, k):
    expected = grade_everything(sources_from_columns(table), rule).top(k)
    result = threshold_top_k(sources_from_columns(table), rule, k)
    assert result.answers.same_grade_multiset(expected)


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.name)
@given(table=tables(2), k=st.integers(min_value=1, max_value=10))
@settings(max_examples=25, deadline=None)
def test_nra_agrees_with_naive(rule, table, k):
    expected = grade_everything(sources_from_columns(table), rule).top(k)
    result = nra_top_k(sources_from_columns(table), rule, k)
    assert result.answers.same_grade_multiset(expected)


@given(table=tables(2), k=st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None)
def test_disjunction_agrees_with_naive(table, k):
    expected = grade_everything(sources_from_columns(table), conorms.MAX).top(k)
    result = disjunction_top_k(sources_from_columns(table), k)
    assert result.answers.same_grade_multiset(expected)


@given(
    table=tables(2),
    k=st.integers(min_value=1, max_value=10),
    tau=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=30, deadline=None)
def test_filter_condition_agrees_with_naive(table, k, tau):
    expected = grade_everything(sources_from_columns(table), tnorms.MIN).top(k)
    result = filter_condition_top_k(
        sources_from_columns(table), k, initial_tau=tau
    )
    assert result.answers.same_grade_multiset(expected)


@given(table=tables(2), k=st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_fagin_resumption_covers_top_2k(table, k):
    from repro.core.fagin import FaginAlgorithm
    from repro.core.graded import GradedSet

    algorithm = FaginAlgorithm(sources_from_columns(table), tnorms.MIN)
    first = algorithm.next_k(k)
    second = algorithm.next_k(k)
    combined = GradedSet(first.answers.as_dict() | second.answers.as_dict())
    expected = grade_everything(sources_from_columns(table), tnorms.MIN).top(
        min(2 * k, len(table))
    )
    assert combined.same_grade_multiset(expected)
