"""Access accounting: counters, cost models, reports, meters."""


from repro.core.cost import (
    RANDOM_EXPENSIVE,
    SORTED_EXPENSIVE,
    UNIFORM,
    AccessCounter,
    CostMeter,
    CostModel,
    CostReport,
)
from repro.core.sources import ListSource


def test_counter_records_and_sums():
    counter = AccessCounter()
    counter.record_sorted(3)
    counter.record_random()
    assert counter.sorted_accesses == 3
    assert counter.random_accesses == 1
    assert counter.database_access_cost == 4


def test_counter_add_and_reset():
    a = AccessCounter(2, 3)
    b = AccessCounter(1, 1)
    merged = a + b
    assert merged.snapshot() == (3, 4)
    a.reset()
    assert a.database_access_cost == 0


def test_uniform_model_is_the_paper_cost():
    counter = AccessCounter(5, 7)
    assert UNIFORM.cost(counter) == 12


def test_skewed_models():
    counter = AccessCounter(5, 7)
    assert SORTED_EXPENSIVE.cost(counter) == 5 * 10 + 7
    assert RANDOM_EXPENSIVE.cost(counter) == 5 + 7 * 10
    custom = CostModel(sorted_charge=2.5, random_charge=0.5, name="custom")
    assert custom.cost(counter) == 5 * 2.5 + 7 * 0.5


def test_report_totals_and_merge():
    report = CostReport({"a": AccessCounter(2, 1), "b": AccessCounter(3, 0)})
    assert report.sorted_access_cost == 5
    assert report.random_access_cost == 1
    assert report.database_access_cost == 6
    other = CostReport({"a": AccessCounter(1, 1), "c": AccessCounter(0, 2)})
    merged = report.merged(other)
    assert merged.per_source["a"].snapshot() == (3, 2)
    assert merged.per_source["c"].snapshot() == (0, 2)
    assert merged.database_access_cost == 6 + 4


def test_meter_measures_only_the_delta():
    source = ListSource({"a": 0.5, "b": 0.4}, name="L")
    cursor = source.cursor()
    cursor.next()  # pre-existing access, not ours
    meter = CostMeter([source])
    cursor.next()
    source.random_access("a")
    report = meter.report()
    assert report.per_source["L"].snapshot() == (1, 1)


def test_meter_disambiguates_same_name():
    a = ListSource({"x": 0.5}, name="L")
    b = ListSource({"x": 0.5}, name="L")
    a.cursor().next()
    meter = CostMeter([a, b])
    a.cursor().next()
    b.random_access("x")
    report = meter.report()
    assert report.database_access_cost == 2
    assert len(report.per_source) == 2


def test_report_repr_mentions_totals():
    report = CostReport({"a": AccessCounter(2, 1)})
    assert "sorted=2" in repr(report)
