"""The Boolean-conjunct-first strategy (Beatles example)."""

import pytest

from repro.core.boolean_first import boolean_first_top_k
from repro.core.naive import grade_everything
from repro.core.sources import ListSource
from repro.errors import PlanError
from repro.middleware.relational import BooleanSource
from repro.scoring import tnorms
from repro.workloads.graded_lists import boolean_column, independent


def build(n=200, selectivity=0.1, seed=4):
    crisp = boolean_column(n, selectivity, seed=seed)
    fuzzy = {name: grades[0] for name, grades in independent(n, 1, seed=seed).items()}
    return [
        BooleanSource(crisp, name="Artist=Beatles"),
        ListSource(fuzzy, name="AlbumColor=red"),
    ]


def test_matches_oracle():
    sources = build()
    result = boolean_first_top_k(sources, tnorms.MIN, 10)
    expected = grade_everything(sources, tnorms.MIN).top(10)
    assert result.answers.same_grade_multiset(expected)


def test_cost_tracks_selectivity_not_database_size():
    for n in (200, 2000):
        sources = build(n=n, selectivity=0.05, seed=7)
        selected = sources[0].positive_count
        result = boolean_first_top_k(sources, tnorms.MIN, 10)
        # |S| + 1 sorted accesses on the Boolean list, |S| random probes
        # on the fuzzy list (m = 2).
        assert result.database_access_cost <= selected * 2 + 1 + 10


def test_nonzero_answers_all_satisfy_the_predicate():
    sources = build(selectivity=0.2)
    crisp = sources[0].as_graded_set()
    result = boolean_first_top_k(sources, tnorms.MIN, 10)
    for item in result.answers:
        if item.grade > 0:
            assert crisp[item.object_id] == 1.0


def test_pads_with_zero_grades_when_predicate_is_too_selective():
    sources = build(n=100, selectivity=0.02)  # only 2 satisfying objects
    result = boolean_first_top_k(sources, tnorms.MIN, 10)
    assert len(result.answers) == 10
    grades = sorted((i.grade for i in result.answers), reverse=True)
    assert sum(1 for g in grades if g > 0) == 2
    assert grades[2:] == [0.0] * 8


def test_zero_selectivity_returns_all_zeros():
    sources = build(n=50, selectivity=0.0)
    result = boolean_first_top_k(sources, tnorms.MIN, 5)
    assert all(i.grade == 0.0 for i in result.answers)


def test_boolean_index_validation():
    sources = build()
    with pytest.raises(PlanError):
        boolean_first_top_k(sources, tnorms.MIN, 5, boolean_index=7)


def test_boolean_index_other_position():
    sources = build()
    reordered = [sources[1], sources[0]]
    result = boolean_first_top_k(reordered, tnorms.MIN, 10, boolean_index=1)
    expected = grade_everything(reordered, tnorms.MIN).top(10)
    assert result.answers.same_grade_multiset(expected)


def test_product_rule_works_too():
    """Any rule annihilating at zero qualifies; product grades are
    1 * fuzzy = fuzzy inside S and 0 outside."""
    sources = build(selectivity=0.15)
    result = boolean_first_top_k(sources, tnorms.PRODUCT, 10)
    expected = grade_everything(sources, tnorms.PRODUCT).top(10)
    assert result.answers.same_grade_multiset(expected)
