"""GradedSet / GradedItem: the section-3 data structure."""

import pytest
from hypothesis import given, strategies as st

from repro.core.graded import GradedItem, GradedSet, from_sorted_list, validate_grade
from repro.errors import GradeError

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
grade_maps = st.dictionaries(st.text(min_size=1, max_size=8), grades, max_size=20)


# ----------------------------------------------------------------------
# validate_grade
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan"), float("inf"), "x", None])
def test_validate_grade_rejects(bad):
    with pytest.raises(GradeError):
        validate_grade(bad)


@pytest.mark.parametrize("good", [0, 1, 0.5, True])
def test_validate_grade_accepts(good):
    assert validate_grade(good) == float(good)


# ----------------------------------------------------------------------
# GradedItem
# ----------------------------------------------------------------------
def test_item_orders_by_descending_grade():
    items = sorted([GradedItem("a", 0.2), GradedItem("b", 0.9), GradedItem("c", 0.5)])
    assert [i.object_id for i in items] == ["b", "c", "a"]


def test_item_tie_break_is_deterministic():
    items = sorted([GradedItem("z", 0.5), GradedItem("a", 0.5)])
    assert [i.object_id for i in items] == ["a", "z"]


def test_item_unpacking():
    obj, grade = GradedItem("a", 0.7)
    assert obj == "a" and grade == 0.7


def test_item_validates_grade():
    with pytest.raises(GradeError):
        GradedItem("a", 1.5)


# ----------------------------------------------------------------------
# GradedSet construction and access
# ----------------------------------------------------------------------
def test_construct_from_mapping_pairs_and_items():
    via_map = GradedSet({"a": 0.5, "b": 0.7})
    via_pairs = GradedSet([("a", 0.5), ("b", 0.7)])
    via_items = GradedSet([GradedItem("a", 0.5), GradedItem("b", 0.7)])
    assert via_map == via_pairs == via_items


def test_absent_object_defaults_to_zero():
    gs = GradedSet({"a": 0.5})
    assert gs.grade("missing") == 0.0
    assert gs.grade("missing", default=0.3) == 0.3
    with pytest.raises(KeyError):
        gs["missing"]


def test_setitem_invalidates_sorted_cache():
    gs = GradedSet({"a": 0.5, "b": 0.9})
    assert [i.object_id for i in gs] == ["b", "a"]
    gs["a"] = 1.0
    assert [i.object_id for i in gs] == ["a", "b"]


def test_iteration_is_sorted_descending():
    gs = GradedSet({"a": 0.1, "b": 0.9, "c": 0.5})
    grades_seen = [item.grade for item in gs]
    assert grades_seen == sorted(grades_seen, reverse=True)


# ----------------------------------------------------------------------
# top / best / kth_grade
# ----------------------------------------------------------------------
def test_top_k():
    gs = GradedSet({"a": 0.1, "b": 0.9, "c": 0.5})
    assert [i.object_id for i in gs.top(2)] == ["b", "c"]
    assert len(gs.top(10)) == 3
    assert len(gs.top(0)) == 0
    with pytest.raises(ValueError):
        gs.top(-1)


def test_best_and_kth():
    gs = GradedSet({"a": 0.1, "b": 0.9})
    assert gs.best().object_id == "b"
    assert gs.kth_grade(1) == 0.9
    assert gs.kth_grade(2) == pytest.approx(0.1)
    assert gs.kth_grade(5) == 0.0
    with pytest.raises(ValueError):
        gs.kth_grade(0)
    assert GradedSet().best() is None


# ----------------------------------------------------------------------
# Fuzzy algebra (Zadeh defaults)
# ----------------------------------------------------------------------
def test_intersection_min():
    a = GradedSet({"x": 0.8, "y": 0.4})
    b = GradedSet({"x": 0.5, "z": 0.9})
    inter = a.intersection(b)
    assert inter["x"] == 0.5
    assert inter["y"] == 0.0  # absent from b
    assert inter["z"] == 0.0


def test_union_max():
    a = GradedSet({"x": 0.8, "y": 0.4})
    b = GradedSet({"x": 0.5, "z": 0.9})
    union = a.union(b)
    assert union["x"] == 0.8
    assert union["y"] == 0.4
    assert union["z"] == 0.9


def test_complement_standard():
    a = GradedSet({"x": 0.8})
    assert a.complement()["x"] == pytest.approx(0.2)


def test_custom_tnorm_intersection():
    a = GradedSet({"x": 0.5})
    b = GradedSet({"x": 0.5})
    product = a.intersection(b, tnorm=lambda p, q: p * q)
    assert product["x"] == 0.25


@given(grade_maps, grade_maps)
def test_de_morgan_on_sets(map_a, map_b):
    """complement(union) == intersection(complements) over the shared
    support (Zadeh rules)."""
    a, b = GradedSet(map_a), GradedSet(map_b)
    left = a.union(b).complement()
    right = a.complement().combine(
        b.complement(), min, absent=1.0
    )
    for obj in set(map_a) | set(map_b):
        assert left.grade(obj) == pytest.approx(right.grade(obj), abs=1e-12)


def test_is_crisp():
    assert GradedSet({"a": 0.0, "b": 1.0}).is_crisp()
    assert not GradedSet({"a": 0.5}).is_crisp()


def test_support_threshold():
    gs = GradedSet({"a": 0.0, "b": 0.5, "c": 1.0})
    assert set(gs.support().objects()) == {"b", "c"}
    assert set(gs.support(0.5).objects()) == {"c"}


# ----------------------------------------------------------------------
# Comparison helpers
# ----------------------------------------------------------------------
def test_grades_equal():
    a = GradedSet({"x": 0.5})
    assert a.grades_equal(GradedSet({"x": 0.5 + 1e-12}))
    assert not a.grades_equal(GradedSet({"x": 0.6}))
    assert not a.grades_equal(GradedSet({"y": 0.5}))


def test_same_grade_multiset_ignores_identity():
    a = GradedSet({"x": 0.5, "y": 0.7})
    b = GradedSet({"p": 0.7, "q": 0.5})
    assert a.same_grade_multiset(b)
    assert not a.same_grade_multiset(GradedSet({"p": 0.7}))


# ----------------------------------------------------------------------
# from_sorted_list
# ----------------------------------------------------------------------
def test_from_sorted_list_accepts_nonincreasing():
    gs = from_sorted_list([("a", 0.9), ("b", 0.9), ("c", 0.1)])
    assert len(gs) == 3


def test_from_sorted_list_rejects_increase():
    with pytest.raises(GradeError):
        from_sorted_list([("a", 0.5), ("b", 0.9)])


# ----------------------------------------------------------------------
# alpha-cuts
# ----------------------------------------------------------------------
def test_alpha_cut_weak_and_strong():
    gs = GradedSet({"a": 0.2, "b": 0.5, "c": 0.9})
    assert gs.alpha_cut(0.5) == {"b", "c"}
    assert gs.alpha_cut(0.5, strong=True) == {"c"}
    assert gs.alpha_cut(0.0) == {"a", "b", "c"}
    assert gs.alpha_cut(1.0) == frozenset()


def test_alpha_cuts_are_nested():
    gs = GradedSet({f"o{i}": i / 10 for i in range(11)})
    previous = None
    for alpha in (0.0, 0.3, 0.6, 0.9):
        cut = gs.alpha_cut(alpha)
        if previous is not None:
            assert cut <= previous
        previous = cut


def test_alpha_cut_validates_alpha():
    with pytest.raises(GradeError):
        GradedSet({"a": 0.5}).alpha_cut(1.5)
