"""The bulk-access protocol: equivalence, backends, and wrapper purity.

The refactor's contract is that bulk draining is an *optimization, not a
semantics change*: for every algorithm and every batch size, the answers
AND the access counts must be identical to item-at-a-time execution —
including through the full wrapper stack (verified over batched over
mapped over sorted-only), where a lazy default implementation would
silently degrade bulk reads to per-item calls or, worse, change what a
wrapper charges or records.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batching import BatchedSource
from repro.core.fagin import fagin_top_k
from repro.core.naive import grade_everything
from repro.core.sources import (
    ArraySource,
    ListSource,
    SortedOnlySource,
    VerifyingSource,
    sources_from_columns,
)
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.errors import AccessError, GradeError, UnknownObjectError
from repro.middleware.caching import CachedSource
from repro.middleware.idmap import IdMapping, MappedSource
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
#: a small grade alphabet forces heavy ties, the hard case for ordering
tied_grades = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])


def tables(m, values=grades, min_objects=1, max_objects=40):
    return st.dictionaries(
        st.integers(min_value=0, max_value=10_000),
        st.tuples(*([values] * m)),
        min_size=min_objects,
        max_size=max_objects,
    )


def build_stack(table, *, wrapper_batch=5, sorted_only=False):
    """verified ∘ batched ∘ mapped (∘ sorted-only) over a ListSource.

    Each column speaks subsystem-local ids internally; the algorithms
    see global ids via the mapping, exactly the Garlic situation.
    """
    m = len(next(iter(table.values())))
    stack = []
    for i in range(m):
        column = {oid: vector[i] for oid, vector in table.items()}
        inner = ListSource(
            {f"local-{oid}": grade for oid, grade in column.items()},
            name=f"L{i}",
        )
        if sorted_only:
            inner = SortedOnlySource(inner)
        mapped = MappedSource(
            inner, IdMapping({oid: f"local-{oid}" for oid in column})
        )
        stack.append(VerifyingSource(BatchedSource(mapped, wrapper_batch)))
    return stack


def counter_snapshots(stack):
    """Every distinct counter in every wrapper chain, innermost included."""
    snapshots = []
    for source in stack:
        seen = set()
        node = source
        while node is not None:
            if id(node.counter) not in seen:
                seen.add(id(node.counter))
                snapshots.append(node.counter.snapshot())
            node = getattr(node, "_inner", None)
    return snapshots


# ----------------------------------------------------------------------
# Property: bulk == item-at-a-time, through the full wrapper stack
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "algorithm", [fagin_top_k, threshold_top_k], ids=["fagin", "ta"]
)
@given(
    table=tables(2),
    k=st.integers(min_value=1, max_value=10),
    batch=st.integers(min_value=2, max_value=17),
    wrapper_batch=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_bulk_matches_item_at_a_time_through_stack(
    algorithm, table, k, batch, wrapper_batch
):
    per_item = algorithm(
        build_stack(table, wrapper_batch=wrapper_batch),
        tnorms.MIN,
        k,
        batch_size=1,
    )
    bulk_stack = build_stack(table, wrapper_batch=wrapper_batch)
    bulk = algorithm(bulk_stack, tnorms.MIN, k, batch_size=batch)
    assert bulk.answers.same_grade_multiset(per_item.answers)
    assert bulk.sorted_depth == per_item.sorted_depth
    assert bulk.cost.sorted_access_cost == per_item.cost.sorted_access_cost
    assert bulk.cost.random_access_cost == per_item.cost.random_access_cost
    # Re-run the per-item order on a fresh stack so counters of *every*
    # layer (logical and repository-side) can be compared positionally.
    reference_stack = build_stack(table, wrapper_batch=wrapper_batch)
    algorithm(reference_stack, tnorms.MIN, k, batch_size=1)
    assert counter_snapshots(bulk_stack) == counter_snapshots(reference_stack)
    # And the answer is still the right answer.
    expected = grade_everything(sources_from_columns(table), tnorms.MIN).top(k)
    assert bulk.answers.same_grade_multiset(expected)


@given(
    table=tables(2),
    k=st.integers(min_value=1, max_value=10),
    batch=st.integers(min_value=2, max_value=17),
    wrapper_batch=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_nra_bulk_matches_item_at_a_time_sorted_only(
    table, k, batch, wrapper_batch
):
    per_item_stack = build_stack(
        table, wrapper_batch=wrapper_batch, sorted_only=True
    )
    per_item = nra_top_k(per_item_stack, tnorms.MIN, k, batch_size=1)
    bulk_stack = build_stack(
        table, wrapper_batch=wrapper_batch, sorted_only=True
    )
    bulk = nra_top_k(bulk_stack, tnorms.MIN, k, batch_size=batch)
    assert bulk.answers.same_grade_multiset(per_item.answers)
    assert bulk.cost.sorted_access_cost == per_item.cost.sorted_access_cost
    assert bulk.cost.random_access_cost == 0
    assert counter_snapshots(bulk_stack) == counter_snapshots(per_item_stack)
    expected = grade_everything(sources_from_columns(table), tnorms.MIN).top(k)
    assert bulk.answers.same_grade_multiset(expected)


@pytest.mark.parametrize("backend", ["list", "array"])
def test_batch_size_never_changes_cost_on_plain_sources(backend):
    table = independent(400, 3, seed=7)
    baseline = None
    for batch_size in (1, 3, 64, 4096):
        sources = sources_from_columns(table, backend=backend)
        result = threshold_top_k(sources, tnorms.MIN, 10, batch_size=batch_size)
        key = (
            sorted(item.grade for item in result.answers),
            result.cost.sorted_access_cost,
            result.cost.random_access_cost,
            result.sorted_depth,
        )
        if baseline is None:
            baseline = key
        assert key == baseline, f"batch_size={batch_size} diverged"


# ----------------------------------------------------------------------
# ArraySource: a drop-in ListSource replacement, object-for-object
# ----------------------------------------------------------------------
@given(table=tables(1, values=tied_grades, max_objects=60))
@settings(max_examples=50, deadline=None)
def test_array_source_order_matches_list_source(table):
    column = {oid: vector[0] for oid, vector in table.items()}
    from_list = ListSource(column).cursor().next_batch(len(column) + 1)
    from_array = ArraySource(column).cursor().next_batch(len(column) + 1)
    assert [(i.object_id, i.grade) for i in from_list] == [
        (i.object_id, i.grade) for i in from_array
    ]


@given(table=tables(3))
@settings(max_examples=20, deadline=None)
def test_backends_agree_on_ta_answers_and_costs(table):
    as_list = threshold_top_k(
        sources_from_columns(table, backend="list"), tnorms.MIN, 5
    )
    as_array = threshold_top_k(
        sources_from_columns(table, backend="array"), tnorms.MIN, 5
    )
    assert as_array.answers.same_grade_multiset(as_list.answers)
    assert as_array.cost.sorted_access_cost == as_list.cost.sorted_access_cost
    assert as_array.cost.random_access_cost == as_list.cost.random_access_cost


def test_array_source_accounting():
    source = ArraySource({"a": 0.9, "b": 0.6, "c": 0.3})
    cursor = source.cursor()
    assert [i.object_id for i in cursor.next_batch(2)] == ["a", "b"]
    assert source.counter.sorted_accesses == 2
    grades_out = source.random_access_many(["a", "c"])
    assert grades_out == {"a": 0.9, "c": 0.3}
    assert source.counter.random_accesses == 2
    # Over-asking at the end delivers the remainder and charges only it.
    assert len(cursor.next_batch(10)) == 1
    assert source.counter.sorted_accesses == 3
    assert cursor.next_batch(10) == []
    assert source.counter.sorted_accesses == 3


def test_array_source_rejects_bad_grades():
    with pytest.raises(GradeError):
        ArraySource({"a": 1.5})
    with pytest.raises(GradeError):
        ArraySource({"a": float("nan")})
    with pytest.raises(GradeError):
        ArraySource({"a": "not a number"})


def test_array_source_from_arrays():
    source = ArraySource.from_arrays(["x", "y"], [0.2, 0.8], name="col")
    assert [i.object_id for i in source.cursor().next_batch(2)] == ["y", "x"]
    with pytest.raises(AccessError):
        ArraySource.from_arrays(["x", "x"], [0.2, 0.8])
    with pytest.raises(AccessError):
        ArraySource.from_arrays(["x"], [0.2, 0.8])
    with pytest.raises(UnknownObjectError):
        source.random_access("missing")


def test_from_arrays_validates_grade_range():
    # GradeError is a ValueError, and the message names the source and
    # the first offending position so a bad column is findable
    with pytest.raises(ValueError, match="col"):
        ArraySource.from_arrays(["x", "y"], [0.2, 1.8], name="col")
    with pytest.raises(GradeError, match="position 1"):
        ArraySource.from_arrays(["x", "y"], [0.2, -0.1], name="col")
    with pytest.raises(GradeError):
        ArraySource.from_arrays(["x"], [float("inf")], name="col")
    with pytest.raises(GradeError):
        ArraySource.from_arrays(["x"], [float("nan")], name="col")


def test_from_arrays_presorted_validates_order():
    # presorted trusts the permutation but still checks monotonicity
    source = ArraySource.from_arrays(
        ["y", "x"], [0.8, 0.2], name="col", presorted=True
    )
    assert [i.object_id for i in source.cursor().next_batch(2)] == ["y", "x"]
    with pytest.raises(GradeError, match="nonincreasing"):
        ArraySource.from_arrays(
            ["x", "y"], [0.2, 0.8], name="col", presorted=True
        )


def test_empty_bulk_random_access_is_free_even_when_unsupported():
    source = SortedOnlySource(ListSource({"a": 0.5}))
    assert source.random_access_many([]) == {}
    assert source.counter.random_accesses == 0


# ----------------------------------------------------------------------
# Satellite regression: peeks are side-effect-free on VerifyingSource
# ----------------------------------------------------------------------
class _InconsistentSource(ListSource):
    """Random access disagrees with the sorted stream for every object."""

    def _grade_of(self, object_id):
        return max(0.0, super()._grade_of(object_id) - 0.5)

    def _grades_of_many(self, object_ids):
        return {oid: self._grade_of(oid) for oid in object_ids}


def test_verifying_peek_records_no_delivery():
    verified = VerifyingSource(_InconsistentSource({"a": 0.9, "b": 0.7}))
    cursor = verified.cursor()
    assert cursor.peek_grade() == 0.9
    assert cursor.peek_batch(2)[1].grade == 0.7
    # Nothing was *delivered*, so the (lying) random access has nothing
    # to contradict: a peek must never arm the consistency check.
    assert verified._delivered == {}
    assert verified.random_access("a") == pytest.approx(0.4)
    # A consuming read does arm it.
    cursor.next_batch(1)
    with pytest.raises(AccessError):
        verified.random_access("a")


def test_verifying_source_still_catches_order_violation_in_bulk():
    class _Unsorted(ListSource):
        def __init__(self):
            super().__init__({})
            from repro.core.graded import GradedItem

            self._sorted = [GradedItem("a", 0.3), GradedItem("b", 0.8)]
            self._grades = {"a": 0.3, "b": 0.8}

    verified = VerifyingSource(_Unsorted())
    with pytest.raises(AccessError):
        verified.cursor().next_batch(2)


# ----------------------------------------------------------------------
# Satellite regression: materialization never charges, even wrapped
# ----------------------------------------------------------------------
def _materialization_stack():
    inner = ListSource({f"o{i}": (10 - i) / 10 for i in range(8)}, name="L")
    mapped = MappedSource(inner, IdMapping.identity(f"o{i}" for i in range(8)))
    batched = BatchedSource(mapped, 3)
    cached = CachedSource(batched)
    return inner, batched, cached


def test_as_graded_set_and_object_ids_are_free_through_wrappers():
    inner, batched, cached = _materialization_stack()
    materialized = cached.as_graded_set()
    ids = list(cached.object_ids())
    assert len(materialized) == 8
    assert ids == [f"o{i}" for i in range(8)]
    # No layer paid: not the logical counters, not the repository, and
    # the batch window never shipped anything.
    for source in (inner, batched, cached):
        assert source.counter.snapshot() == (0, 0)
    assert batched.fetched == 0 and batched.requests == 0
    assert cached.hits == 0 and cached.misses == 0


def test_cached_source_peeks_do_not_touch_repository():
    inner = ListSource({"a": 0.9, "b": 0.5, "c": 0.1})
    cached = CachedSource(inner)
    cursor = cached.cursor()
    assert [i.grade for i in cursor.peek_batch(3)] == [0.9, 0.5, 0.1]
    assert inner.counter.snapshot() == (0, 0)
    assert (cached.hits, cached.misses) == (0, 0)
    # Consuming reads pay normally afterwards.
    cursor.next_batch(2)
    assert inner.counter.sorted_accesses == 2
    assert cached.misses == 2


def test_cached_source_bulk_reads_match_per_item_statistics():
    def run(bulk):
        inner = ListSource({f"o{i}": (9 - i) / 9 for i in range(9)})
        cached = CachedSource(inner)
        first = cached.cursor()
        if bulk:
            first.next_batch(5)
        else:
            for _ in range(5):
                first.next()
        second = cached.cursor()  # replays the prefix, then extends
        if bulk:
            second.next_batch(7)
            cached.random_access_many(["o0", "o8", "o0"])
        else:
            for _ in range(7):
                second.next()
            for oid in ("o0", "o8", "o0"):
                cached.random_access(oid)
        return (
            cached.hits,
            cached.misses,
            cached.counter.snapshot(),
            inner.counter.snapshot(),
        )

    assert run(bulk=True) == run(bulk=False)
