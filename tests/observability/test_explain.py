"""EXPLAIN: source statistics, report rendering, engine and CLI paths."""

import filecmp
import json
import random

import pytest

from repro.cli import main
from repro.core.query import Atomic
from repro.core.sources import ListSource
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.list_subsystem import ListSubsystem
from repro.middleware.relational import BooleanSource, RelationalSubsystem
from repro.observability import QueryTracer, validate_trace
from repro.observability.explain import describe_sources, phase_breakdown
from repro.scoring import tnorms

N = 60


def build_engine():
    rng = random.Random(5)
    rows = {
        f"g{i}": {"Artist": "Beatles" if i % 6 == 0 else "Other"} for i in range(N)
    }
    engine = MiddlewareEngine()
    engine.register(RelationalSubsystem("rdbms", rows))
    colors = ListSubsystem("qbic")
    colors.add_list("Color", "red", {f"g{i}": rng.random() for i in range(N)})
    engine.register(colors)
    return engine


COLOR = Atomic("Color", "red")
ARTIST = Atomic("Artist", "Beatles")


# ------------------------------------------------------- building blocks


def test_describe_sources_reports_stats_and_chain():
    fuzzy = ListSource({"a": 0.5, "b": 0.2}, name="Color")
    crisp = BooleanSource({"a": 1.0, "b": 0.0}, name="Artist")
    fuzzy_stats, crisp_stats = describe_sources([fuzzy, crisp])
    assert fuzzy_stats.name == "Color"
    assert fuzzy_stats.size == 2
    assert not fuzzy_stats.is_boolean
    assert fuzzy_stats.wrappers == ("ListSource",)
    assert crisp_stats.is_boolean
    assert crisp_stats.positive_count == 1
    assert "boolean, 1 positive" in crisp_stats.describe()


def test_phase_breakdown_groups_accesses():
    tracer = QueryTracer()
    with tracer.phase("scan"):
        tracer.record_sorted("L", "a", 0.9)
        tracer.record_sorted("L", "b", 0.7)
    with tracer.phase("fill"):
        tracer.record_random("M", "a", 0.4)
    tracer.record_sorted("L", "c", 0.5)  # outside any phase
    assert phase_breakdown(tracer.events) == {
        "scan": {"sorted": 2, "random": 0},
        "fill": {"sorted": 0, "random": 1},
        "-": {"sorted": 1, "random": 0},
    }


# ------------------------------------------------------------ engine API


def test_explain_report_without_run_executes_nothing():
    engine = build_engine()
    report = engine.explain_report(COLOR & ARTIST, 4)
    assert report.executed is None
    for source in engine.bind_all(COLOR & ARTIST):
        assert source.counter.sorted_accesses == 0
        assert source.counter.random_accesses == 0
    text = report.render()
    assert "plan:" in text and "atoms:" in text
    assert "executed:" not in text


def test_explain_report_with_run_carries_actuals():
    engine = build_engine()
    report = engine.explain_report(COLOR & ARTIST, 4, run=True)
    assert report.executed is not None
    assert report.executed["cost"] == (
        report.executed["sorted"] + report.executed["random"]
    )
    assert report.phases, "a run must produce a per-phase breakdown"
    text = report.render()
    assert "executed: cost" in text
    assert "phases:" in text


def test_explain_matches_executed_strategy():
    engine = build_engine()
    plan = engine.explain(COLOR & ARTIST, 4)
    result = engine.top_k(COLOR & ARTIST, 4)
    assert result.algorithm is not None
    assert plan.k == 4


def test_session_tracer_records_engine_queries():
    engine = build_engine()
    tracer = engine.configure_observability(QueryTracer())
    engine.top_k(COLOR & ARTIST, 3)
    validate_trace(tracer.as_dict())
    phases = [e["phase"] for e in tracer.events if e["type"] == "phase_start"]
    assert phases[0] == "query"
    plans = [
        e for e in tracer.events if e["type"] == "event" and e["name"] == "plan"
    ]
    assert len(plans) == 1
    assert plans[0]["attrs"]["k"] == 3
    counts = tracer.access_counts()
    assert sum(s + r for s, r in counts.values()) > 0


# --------------------------------------------------------------- CLI path


SQL = "SELECT * FROM albums WHERE AlbumColor = 'red' STOP AFTER 4"


def run_cli(tmp_path, name):
    out = tmp_path / name
    code = main(
        ["sql", "--size", "200", SQL, "--explain", "--trace-out", str(out)]
    )
    assert code == 0
    return out


def test_cli_explain_prints_report(capsys, tmp_path):
    run_cli(tmp_path, "t.json")
    output = capsys.readouterr().out
    assert "plan:" in output
    assert "accesses" in output or "sorted" in output


def test_cli_trace_out_is_schema_valid_and_deterministic(capsys, tmp_path):
    first = run_cli(tmp_path, "first.json")
    second = run_cli(tmp_path, "second.json")
    capsys.readouterr()
    validate_trace(json.loads(first.read_text(encoding="utf-8")))
    assert filecmp.cmp(first, second, shallow=False), (
        "two identical CLI runs must write byte-identical traces"
    )
