"""Regenerate the golden trace files under tests/observability/golden/.

The golden-trace regression tests byte-compare freshly recorded
timelines against these files; when the trace *schema* changes on
purpose (bump ``TRACE_VERSION``!), regenerate them with::

    PYTHONPATH=src python -m tests.observability.regenerate_golden

and commit the diff.  The builders here are imported by the tests, so
the canonical database and query parameters live in exactly one place.
"""

from __future__ import annotations

import pathlib

from repro.core.fagin import fagin_top_k
from repro.core.sources import sources_from_columns
from repro.core.threshold import threshold_top_k
from repro.observability import QueryTracer, validate_trace
from repro.scoring import tnorms

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The canonical fixed database: 6 objects, 2 lists, distinct sorted
#: orders, one tie pair per list nowhere near the top — small enough to
#: eyeball the timeline, rich enough to exercise both phases of A0 and
#: TA's early stop.
TABLE = {
    "a": (0.9, 0.4),
    "b": (0.8, 0.7),
    "c": (0.55, 0.9),
    "d": (0.5, 0.2),
    "e": (0.3, 0.6),
    "f": (0.1, 0.1),
}
K = 2


def build_sources():
    return sources_from_columns(TABLE, names=("color", "shape"), backend="list")


def record_a0() -> QueryTracer:
    tracer = QueryTracer()
    fagin_top_k(build_sources(), tnorms.MIN, K, tracer=tracer)
    return tracer


def record_ta() -> QueryTracer:
    tracer = QueryTracer()
    threshold_top_k(build_sources(), tnorms.MIN, K, tracer=tracer)
    return tracer


BUILDERS = {
    "a0_min_k2.json": record_a0,
    "ta_min_k2.json": record_ta,
}


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, record in BUILDERS.items():
        tracer = record()
        validate_trace(tracer.as_dict())
        path = GOLDEN_DIR / name
        path.write_text(tracer.to_json(), encoding="utf-8")
        print(f"wrote {path} ({len(tracer.events)} events)")


if __name__ == "__main__":
    main()
