"""resilience_report and the metrics registry must agree, exactly.

The satellite audit: a ResilientSource keeps its own ``stats``;
``attach_resilience_observers`` wires each node to the tracer so the
``resilience.*`` counters track those stats going forward — and
resynchronizes them at attach time, so pre-existing history (a binding
that retried before the tracer was installed) is never lost.
"""

import pytest

from repro.core.sources import ListSource
from repro.errors import CircuitOpenError, TransientAccessError
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.resilience import (
    ResiliencePolicy,
    ResilientSource,
    RetryPolicy,
    VirtualClock,
    resilience_report,
)
from repro.observability import (
    MetricsRegistry,
    QueryTracer,
    attach_resilience_observers,
)


def make_list(n=30, name="L"):
    return ListSource({f"x{i}": (n - i) / n for i in range(n)}, name=name)


def resilient(profile, policy=None, n=30, name="L"):
    clock = VirtualClock()
    faulty = FaultInjectingSource(make_list(n, name=name), profile, clock=clock)
    return ResilientSource(faulty, policy, clock=clock)


def tally(metrics, kind):
    return metrics.counter_total(f"resilience.{kind}")


def test_retry_counts_agree_between_report_and_metrics():
    source = resilient(FaultProfile(transient_rate=1.0, max_consecutive=2, seed=0))
    metrics = MetricsRegistry()
    tracer = QueryTracer(metrics=metrics)
    attach_resilience_observers([source], tracer)

    assert len(source.cursor().next_batch(30)) == 30

    report = resilience_report([source])[source.name]
    assert report["retries"] == source.stats.retries > 0
    assert tally(metrics, "retries") == report["retries"]
    assert tally(metrics, "failures") == report["failures"]
    retried = [
        e
        for e in tracer.events
        if e["type"] == "event"
        and e["name"] == "resilience"
        and e["attrs"]["kind"] == "retries"
    ]
    assert len(retried) == report["retries"]
    assert all(e["attrs"]["source"] == source.name for e in retried)


def test_attach_resynchronizes_pre_existing_history():
    source = resilient(FaultProfile(transient_rate=1.0, max_consecutive=2, seed=0))
    # history accumulates *before* any tracer exists
    source.cursor().next_batch(10)
    before = source.stats.retries
    assert before > 0

    metrics = MetricsRegistry()
    tracer = QueryTracer(metrics=metrics)
    attach_resilience_observers([source], tracer)
    assert tally(metrics, "retries") == before

    source.cursor().next_batch(10)
    report = resilience_report([source])[source.name]
    assert tally(metrics, "retries") == report["retries"] == source.stats.retries


def test_breaker_open_and_rejections_are_observed():
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=1), failure_threshold=2, recovery_time=1000.0
    )
    source = resilient(
        FaultProfile(transient_rate=1.0, max_consecutive=50, seed=0), policy
    )
    metrics = MetricsRegistry()
    tracer = QueryTracer(metrics=metrics)
    attach_resilience_observers([source], tracer)

    cursor = source.cursor()
    for _ in range(2):
        with pytest.raises(TransientAccessError):
            cursor.next()
    with pytest.raises(CircuitOpenError):
        cursor.next()

    report = resilience_report([source])[source.name]
    assert report["circuit_opens"] == 1
    assert report["sorted_circuit"] == "open"
    kinds = [
        e["attrs"]["kind"]
        for e in tracer.events
        if e["type"] == "event" and e["name"] == "resilience"
    ]
    assert kinds.count("circuit_open") == 1
    assert tally(metrics, "failures") == report["failures"] == 2
    assert tally(metrics, "rejections") == report["rejections"] == 1
    assert tally(metrics, "exhausted") == report["exhausted"] == 2


def test_multiple_sources_are_tallied_separately():
    profile = FaultProfile(transient_rate=1.0, max_consecutive=2, seed=0)
    left = resilient(profile, name="L")
    right = resilient(
        FaultProfile(transient_rate=1.0, max_consecutive=2, seed=1), name="M"
    )
    metrics = MetricsRegistry()
    tracer = QueryTracer(metrics=metrics)
    attach_resilience_observers([left, right], tracer)

    left.cursor().next_batch(20)
    right.cursor().next_batch(20)

    report = resilience_report([left, right])
    counters = metrics.counters("resilience.retries")
    assert counters[f"resilience.retries{{source={left.name}}}"] == report[left.name]["retries"]
    assert counters[f"resilience.retries{{source={right.name}}}"] == report[right.name]["retries"]
