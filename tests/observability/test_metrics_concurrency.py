"""Metrics snapshots are safe and consistent while writers hammer away.

The satellite fix this pins: registry read paths (``as_dict``,
``counters``, ``counter_total``) and instrument ``snapshot()`` methods
take the relevant locks, so a scrape racing live writers (the query
service reads metrics mid-load) never crashes on a mutating list and
never observes a torn instrument.
"""

import threading

from repro.observability.metrics import MetricsRegistry

WRITERS = 6
UPDATES = 400


def hammer(work, threads):
    errors = []

    def runner(*args):
        try:
            work(*args)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    pool = [threading.Thread(target=runner, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=30)
    if errors:
        raise errors[0]


def test_snapshot_while_counters_increment():
    registry = MetricsRegistry()
    stop = threading.Event()
    seen = []

    def writer(index):
        counter = registry.counter("ops", worker=str(index))
        for _ in range(UPDATES):
            counter.inc()

    def reader():
        while not stop.is_set():
            snapshot = registry.as_dict()
            seen.append(sum(snapshot["counters"].values()))

    scraper = threading.Thread(target=reader)
    scraper.start()
    try:
        hammer(writer, WRITERS)
    finally:
        stop.set()
        scraper.join(timeout=30)
    assert registry.counter_total("ops") == WRITERS * UPDATES
    # Scraped totals are monotone non-decreasing: no snapshot ever went
    # backwards or saw garbage.
    assert all(a <= b for a, b in zip(seen, seen[1:]))


def test_snapshot_while_series_append():
    registry = MetricsRegistry()
    stop = threading.Event()

    def writer(index):
        series = registry.series("tau", worker=str(index))
        for step in range(UPDATES):
            series.append(step, step / UPDATES)

    def reader():
        while not stop.is_set():
            snapshot = registry.as_dict()
            for points in snapshot["series"].values():
                # Each snapshot is internally consistent: steps strictly
                # increase because each writer owns its own series.
                steps = [step for step, _ in points]
                assert steps == sorted(steps)
            registry.series("tau", worker="0").last()

    scraper = threading.Thread(target=reader)
    scraper.start()
    try:
        hammer(writer, WRITERS)
    finally:
        stop.set()
        scraper.join(timeout=30)
    for index in range(WRITERS):
        assert len(registry.series("tau", worker=str(index)).snapshot()) == UPDATES


def test_histogram_and_gauge_reads_under_writes():
    registry = MetricsRegistry()
    stop = threading.Event()

    def writer(index):
        histogram = registry.histogram("latency")
        gauge = registry.gauge("depth")
        for step in range(UPDATES):
            histogram.observe(step * 0.001)
            gauge.add(1)
            gauge.add(-1)

    def reader():
        while not stop.is_set():
            rendered = registry.as_dict()
            stats = rendered["histograms"].get("latency")
            if stats:
                # count/sum/min/max come from one locked snapshot.
                assert stats["count"] >= 0
                assert stats["max"] >= stats["min"]
            registry.counters("latency")
            registry.counter_total("nothing")

    scraper = threading.Thread(target=reader)
    scraper.start()
    try:
        hammer(writer, WRITERS)
    finally:
        stop.set()
        scraper.join(timeout=30)
    final = registry.histogram("latency").as_dict()
    assert final["count"] == WRITERS * UPDATES
    assert registry.gauge("depth").snapshot() == 0.0


def test_concurrent_instrument_creation_yields_one_instance():
    registry = MetricsRegistry()
    grabbed = [None] * WRITERS
    barrier = threading.Barrier(WRITERS, timeout=10.0)

    def work(index):
        barrier.wait()
        grabbed[index] = registry.counter("shared", label="x")
        grabbed[index].inc()

    hammer(work, WRITERS)
    assert all(instrument is grabbed[0] for instrument in grabbed)
    assert registry.counter_total("shared") == WRITERS


def test_series_properties_are_locked_copies():
    registry = MetricsRegistry()
    series = registry.series("walk")
    stop = threading.Event()

    def writer(index):
        for step in range(UPDATES):
            series.append(step, float(step))

    def reader():
        while not stop.is_set():
            steps = series.steps
            values = series.values
            # Copies, not views: lengths are self-consistent even while
            # the underlying list grows.
            assert len(steps) == len(steps)
            assert all(isinstance(v, float) for v in values[:5])

    scraper = threading.Thread(target=reader)
    scraper.start()
    try:
        hammer(writer, 2)
    finally:
        stop.set()
        scraper.join(timeout=30)
    assert len(series.snapshot()) == 2 * UPDATES
