"""MetricsRegistry unit behaviour: instruments, labels, determinism."""

import pytest

from repro.observability import MetricsRegistry


def test_counter_get_or_create_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("hits", source="L")
    b = registry.counter("hits", source="L")
    c = registry.counter("hits", source="M")
    a.inc()
    b.inc(2)
    assert a is b
    assert a is not c
    assert a.value == 3
    assert c.value == 0


def test_counter_set_to_resynchronizes():
    registry = MetricsRegistry()
    counter = registry.counter("retries")
    counter.inc()
    counter.set_to(10)
    counter.inc()
    assert counter.value == 11


def test_counter_total_sums_across_labels():
    registry = MetricsRegistry()
    registry.counter("hits", source="L").inc(2)
    registry.counter("hits", source="M").inc(3)
    registry.counter("misses", source="L").inc(7)
    assert registry.counter_total("hits") == 5
    assert len(registry.counters("hits")) == 2


def test_gauge_tracks_last_value():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(4)
    gauge.set(2)
    assert gauge.value == 2


def test_histogram_summary_statistics():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in (1.0, 3.0, 2.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.total == pytest.approx(6.0)
    assert histogram.minimum == 1.0
    assert histogram.maximum == 3.0
    assert histogram.mean == pytest.approx(2.0)


def test_series_remembers_steps_and_values():
    registry = MetricsRegistry()
    series = registry.series("tau")
    series.append(3, 0.9)
    series.append(8, 0.5)
    assert series.steps == [3, 8]
    assert series.values == [0.9, 0.5]
    assert series.last() == 0.5


def test_as_dict_is_deterministic_and_label_rendered():
    def build():
        registry = MetricsRegistry()
        registry.counter("hits", source="M").inc(1)
        registry.counter("hits", source="L").inc(2)
        registry.gauge("depth").set(5)
        registry.histogram("latency").observe(1.5)
        registry.series("tau").append(0, 0.9)
        return registry.as_dict()

    first, second = build(), build()
    assert first == second
    assert "hits{source=L}" in first["counters"]
    assert list(first["counters"]) == sorted(first["counters"])
