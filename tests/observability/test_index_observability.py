"""Index physical work in traces and EXPLAIN, and IndexStats under threads."""

import threading

from repro.core.query import Atomic
from repro.index import IndexStats
from repro.observability import MetricsRegistry, QueryTracer, render_trace_explain
from repro.workloads.image_corpus import build_image_database


def traced_run(knn_index="vafile"):
    engine = build_image_database(80, seed=0, knn_index=knn_index)
    try:
        tracer = engine.configure_observability(
            QueryTracer(metrics=MetricsRegistry())
        )
        result = engine.top_k(Atomic("Near", "sunset"), 5)
        return result, tracer
    finally:
        engine.close()


def test_tracer_carries_index_breakdown_and_samples():
    _, tracer = traced_run()
    breakdowns = [
        event
        for event in tracer.events
        if event.get("type") == "event"
        and event.get("name") == "index_breakdown"
    ]
    assert breakdowns, "no index_breakdown event in the trace"
    attrs = breakdowns[0]["attrs"]
    assert attrs["index"] == "vafile"
    assert attrs["source"].startswith("Near=")
    assert attrs["n"] == 80
    assert attrs["node_accesses"] > 0
    assert attrs["distance_evals"] > 0
    nodes = tracer.samples("index.node_accesses")
    evals = tracer.samples("index.distance_evals")
    assert nodes and nodes[-1][1] == float(attrs["node_accesses"])
    assert evals and evals[-1][1] == float(attrs["distance_evals"])


def test_explain_renders_accesses_by_index():
    _, tracer = traced_run()
    rendered = render_trace_explain(tracer)
    assert "accesses by index:" in rendered
    assert "vafile over n=80" in rendered


def test_untraced_and_scanless_runs_stay_clean():
    # No knn subsystem -> no index section in the rendered EXPLAIN.
    engine = build_image_database(40, seed=0)
    try:
        tracer = engine.configure_observability(
            QueryTracer(metrics=MetricsRegistry())
        )
        engine.top_k(Atomic("Category", "product"), 3)
        assert "accesses by index:" not in render_trace_explain(tracer)
    finally:
        engine.close()


def test_index_stats_counts_are_exact_under_threads():
    stats = IndexStats()
    threads, per_thread = 8, 2500

    def hammer():
        for _ in range(per_thread):
            stats.record_nodes()
            stats.record_distances(2)

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert stats.snapshot() == (
        threads * per_thread,
        2 * threads * per_thread,
    )
    stats.reset()
    assert stats.snapshot() == (0, 0)
