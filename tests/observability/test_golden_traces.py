"""Golden-trace regression: canonical timelines are byte-stable.

Each golden file is the exact ``QueryTracer.to_json()`` output for a
fixed 6-object database (see :mod:`tests.observability.regenerate_golden`
for the table and query parameters).  A failure here means the trace
*schema or event ordering changed* — if the change is intentional,
regenerate with::

    PYTHONPATH=src python -m tests.observability.regenerate_golden

review the diff, and commit the new files.
"""

import json

import pytest

from repro.observability import validate_trace
from tests.observability.regenerate_golden import BUILDERS, GOLDEN_DIR, K, TABLE


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_trace_matches_golden_bytes(name):
    expected = (GOLDEN_DIR / name).read_text(encoding="utf-8")
    tracer = BUILDERS[name]()
    assert tracer.to_json() == expected, (
        f"{name} drifted; if intentional, rerun "
        "tests/observability/regenerate_golden and commit the diff"
    )


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_golden_files_are_schema_valid(name):
    payload = json.loads((GOLDEN_DIR / name).read_text(encoding="utf-8"))
    validate_trace(payload)


def test_golden_recording_is_stable_within_process():
    for record in BUILDERS.values():
        assert record().to_json() == record().to_json()


def test_golden_a0_trace_shape():
    """Spot-check the A0 golden file semantically, not just by bytes."""
    payload = json.loads((GOLDEN_DIR / "a0_min_k2.json").read_text("utf-8"))
    events = payload["events"]
    phases = [e["phase"] for e in events if e["type"] == "phase_start"]
    assert phases[:2] == ["sorted-phase", "random-phase"]
    objects = {e["object"] for e in events if e["type"] in ("sorted", "random")}
    assert objects <= set(TABLE)
    grades = [e["grade"] for e in events if e["type"] == "sorted"]
    assert len(grades) >= 2 * K
