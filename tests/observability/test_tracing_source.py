"""TracingSource: records exactly the charged accesses, nothing else."""

from repro.core.sources import ListSource
from repro.observability import QueryTracer, TracingSource, traced, validate_trace

TABLE = {"a": 0.9, "b": 0.7, "c": 0.5, "d": 0.2}


def make(tracer=None):
    tracer = tracer if tracer is not None else QueryTracer()
    return TracingSource(ListSource(TABLE, name="L"), tracer), tracer


def test_identity_is_transparent():
    source, _ = make()
    inner = source._inner
    assert source.name == inner.name == "L"
    # the counter is *shared*, not copied: cost reports see one tally
    assert source.counter is inner.counter
    assert len(source) == len(TABLE)
    assert source.random_access_available()


def test_sorted_accesses_record_position_and_grade():
    source, tracer = make()
    cursor = source.cursor()
    first = cursor.next()
    second = cursor.next()
    events = [e for e in tracer.events if e["type"] == "sorted"]
    assert [(e["object"], e["grade"], e["position"]) for e in events] == [
        (first.object_id, first.grade, 1),
        (second.object_id, second.grade, 2),
    ]
    assert source.counter.sorted_accesses == 2
    validate_trace(tracer.as_dict())


def test_bulk_sorted_access_records_every_item():
    source, tracer = make()
    items = source.cursor().next_batch(3)
    events = [e for e in tracer.events if e["type"] == "sorted"]
    assert [e["object"] for e in events] == [item.object_id for item in items]
    assert [e["position"] for e in events] == [1, 2, 3]
    assert source.counter.sorted_accesses == 3


def test_peeks_are_side_effect_free():
    """Peeks are never charged, so the wrapper must not record them.

    Regression guard for the audit that tracing wrappers, like
    VerifyingSource, stay invisible to the paper's cost measure.
    """
    source, tracer = make()
    cursor = source.cursor()
    window = cursor.peek_batch(4)
    assert len(window) == 4
    assert cursor.peek_grade() == 0.9
    assert tracer.events == []
    assert source.counter.sorted_accesses == 0
    assert source.counter.random_accesses == 0
    # peeking did not advance the cursor either
    assert cursor.next().object_id == window[0].object_id


def test_random_accesses_record_single_and_bulk():
    source, tracer = make()
    grade = source.random_access("c")
    grades = source.random_access_many(["a", "d"])
    events = [e for e in tracer.events if e["type"] == "random"]
    assert [(e["object"], e["grade"]) for e in events] == [
        ("c", grade),
        ("a", grades["a"]),
        ("d", grades["d"]),
    ]
    assert source.counter.random_accesses == 3


def test_access_counts_mirror_shared_counter():
    source, tracer = make()
    source.cursor().next_batch(2)
    source.random_access("a")
    assert tracer.access_counts() == {"L": (2, 1)}
    assert source.counter.sorted_accesses == 2
    assert source.counter.random_accesses == 1


def test_traced_helper_shares_one_tracer():
    tracer = QueryTracer()
    wrapped = traced(
        [ListSource(TABLE, name="L"), ListSource(TABLE, name="M")], tracer
    )
    for source in wrapped:
        assert isinstance(source, TracingSource)
        source.cursor().next()
    assert tracer.access_counts() == {"L": (1, 0), "M": (1, 0)}
