"""QueryTracer unit behaviour: events, spans, samples, serialization."""

import json

import pytest

from repro.errors import TraceError
from repro.observability import MetricsRegistry, QueryTracer, validate_trace


def test_steps_are_contiguous_and_zero_based():
    tracer = QueryTracer()
    with tracer.phase("p"):
        tracer.record_sorted("L", "a", 0.5, position=1)
        tracer.record_random("L", "b", 0.25)
        tracer.sample("x", 1.0)
        tracer.event("note")
    steps = [event["step"] for event in tracer.events]
    assert steps == list(range(len(tracer.events)))
    validate_trace(tracer.as_dict())


def test_events_carry_innermost_phase():
    tracer = QueryTracer()
    with tracer.phase("outer"):
        tracer.record_sorted("L", "a", 0.5)
        with tracer.phase("inner"):
            tracer.record_random("L", "a", 0.5)
        tracer.record_sorted("L", "b", 0.4)
    by_type = {e["type"]: e for e in tracer.events if e["type"] in ("sorted", "random")}
    assert by_type["random"]["phase"] == "inner"
    assert by_type["sorted"]["phase"] == "outer"
    assert tracer.current_phase is None


def test_no_clock_means_no_timestamps():
    tracer = QueryTracer()
    with tracer.phase("p"):
        pass
    assert all("seconds" not in event for event in tracer.events)


def test_injected_clock_measures_phase_seconds():
    ticks = iter([10.0, 12.5])
    metrics = MetricsRegistry()
    tracer = QueryTracer(metrics=metrics, clock=lambda: next(ticks))
    with tracer.phase("p"):
        pass
    end = tracer.events[-1]
    assert end["type"] == "phase_end"
    assert end["seconds"] == pytest.approx(2.5)
    histogram = metrics.histogram("phase.seconds", phase="p")
    assert histogram.count == 1
    assert histogram.total == pytest.approx(2.5)


def test_samples_feed_metrics_series():
    metrics = MetricsRegistry()
    tracer = QueryTracer(metrics=metrics)
    tracer.sample("tau", 0.9)
    tracer.sample("tau", 0.7)
    series = metrics.series("tau")
    assert series.values == [0.9, 0.7]
    assert tracer.samples("tau") == [(0, 0.9), (1, 0.7)]


def test_access_counts_tally_per_source():
    tracer = QueryTracer()
    tracer.record_sorted("A", "x", 0.5)
    tracer.record_sorted("A", "y", 0.4)
    tracer.record_random("B", "x", 0.3)
    assert tracer.access_counts() == {"A": (2, 0), "B": (0, 1)}


def test_to_json_is_deterministic_and_round_trips():
    def record():
        tracer = QueryTracer()
        with tracer.phase("p", k=2):
            tracer.record_sorted("L", "a", 0.5, position=1)
            tracer.sample("tau", 0.5)
        return tracer

    first, second = record().to_json(), record().to_json()
    assert first == second
    assert first.endswith("\n")
    validate_trace(json.loads(first))


# ---------------------------------------------------------- schema guards


def test_validate_rejects_wrong_version():
    with pytest.raises(TraceError, match="version"):
        validate_trace({"version": 999, "events": []})


def test_validate_rejects_non_contiguous_steps():
    payload = {"version": 1, "events": [{"step": 5, "type": "event", "name": "x"}]}
    with pytest.raises(TraceError, match="contiguous"):
        validate_trace(payload)


def test_validate_rejects_unknown_event_type():
    payload = {"version": 1, "events": [{"step": 0, "type": "mystery"}]}
    with pytest.raises(TraceError, match="unknown type"):
        validate_trace(payload)


def test_validate_rejects_out_of_range_grade():
    payload = {
        "version": 1,
        "events": [
            {"step": 0, "type": "sorted", "source": "L", "object": "a", "grade": 1.5}
        ],
    }
    with pytest.raises(TraceError, match="outside"):
        validate_trace(payload)


def test_validate_rejects_missing_access_fields():
    payload = {
        "version": 1,
        "events": [{"step": 0, "type": "random", "object": "a", "grade": 0.5}],
    }
    with pytest.raises(TraceError, match="source"):
        validate_trace(payload)


def test_validate_rejects_unbalanced_phases():
    payload = {
        "version": 1,
        "events": [{"step": 0, "type": "phase_start", "phase": "p"}],
    }
    with pytest.raises(TraceError, match="unclosed"):
        validate_trace(payload)
    payload = {
        "version": 1,
        "events": [
            {"step": 0, "type": "phase_start", "phase": "p"},
            {"step": 1, "type": "phase_end", "phase": "q"},
        ],
    }
    with pytest.raises(TraceError, match="does not match"):
        validate_trace(payload)
