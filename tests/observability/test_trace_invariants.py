"""Algorithm-level trace invariants on fixed databases.

The conformance suite checks traced-accesses == cost over random
databases for the five ranked-retrieval algorithms; here fixed
databases lock down the *shape* of each timeline — which phases occur,
what random access is allowed to touch, and the same cost identity for
the three specialised strategies (boolean-first, disjunction, filter).
"""

import pytest

from repro.core.boolean_first import boolean_first_top_k
from repro.core.disjunction import disjunction_top_k
from repro.core.fagin import fagin_top_k
from repro.core.filter_condition import filter_condition_top_k
from repro.core.sources import sources_from_columns
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.middleware.relational import BooleanSource
from repro.observability import QueryTracer, validate_trace
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent


def build(n=40, m=3, seed=7, backend="list"):
    return sources_from_columns(independent(n, m, seed), backend=backend)


def run_traced(run, sources, *args, **kwargs):
    tracer = QueryTracer()
    result = run(sources, *args, tracer=tracer, **kwargs)
    validate_trace(tracer.as_dict())
    return result, tracer


def assert_traced_equals_cost(sources, tracer, result):
    counts = tracer.access_counts()
    for source in sources:
        assert counts.get(source.name, (0, 0)) == (
            source.counter.sorted_accesses,
            source.counter.random_accesses,
        )
    total = sum(s + r for s, r in counts.values())
    assert total == result.cost.database_access_cost


def seen_before_each_random(events):
    """Every random probe must target an object already seen via sorted."""
    seen = set()
    for event in events:
        if event["type"] == "sorted":
            seen.add(event["object"])
        elif event["type"] == "random":
            assert event["object"] in seen, (
                f"random access to {event['object']} at step "
                f"{event['step']} before any sorted delivery of it"
            )


# ------------------------------------------------------------------- TA


def test_ta_never_probes_unseen_objects():
    sources = build()
    _, tracer = run_traced(threshold_top_k, sources, tnorms.MIN, 5)
    randoms = [e for e in tracer.events if e["type"] == "random"]
    assert randoms, "TA on this database must do random access"
    seen_before_each_random(tracer.events)


def test_ta_interleaves_inside_one_phase():
    sources = build()
    _, tracer = run_traced(threshold_top_k, sources, tnorms.MIN, 5)
    accesses = [e for e in tracer.events if e["type"] in ("sorted", "random")]
    assert {e["phase"] for e in accesses} == {"ta"}
    assert accesses[0]["type"] == "sorted"


def test_ta_tau_samples_are_nonincreasing():
    sources = build()
    _, tracer = run_traced(threshold_top_k, sources, tnorms.MIN, 5)
    taus = [value for _, value in tracer.samples("ta.tau")]
    assert taus == sorted(taus, reverse=True)


# ------------------------------------------------------------------- A0


def test_a0_random_phase_only_probes_seen_objects():
    sources = build()
    _, tracer = run_traced(fagin_top_k, sources, tnorms.MIN, 5)
    seen_before_each_random(tracer.events)


def test_a0_phases_are_ordered_sorted_then_random():
    sources = build()
    _, tracer = run_traced(fagin_top_k, sources, tnorms.MIN, 5)
    accesses = [e for e in tracer.events if e["type"] in ("sorted", "random")]
    phases = [e["phase"] for e in accesses]
    assert set(phases) <= {"sorted-phase", "random-phase"}
    boundary = phases.index("random-phase")
    assert all(p == "sorted-phase" for p in phases[:boundary])
    assert all(p == "random-phase" for p in phases[boundary:])
    assert all(
        e["type"] == ("sorted" if p == "sorted-phase" else "random")
        for e, p in zip(accesses, phases)
    )


# ------------------------------------------------------------------ NRA


def test_nra_trace_has_zero_random_events():
    sources = build()
    result, tracer = run_traced(nra_top_k, sources, tnorms.MIN, 5)
    assert not any(e["type"] == "random" for e in tracer.events)
    assert result.cost.random_access_cost == 0
    assert_traced_equals_cost(sources, tracer, result)


# ------------------------------------- specialised strategies, cost tie


@pytest.mark.parametrize("k", [1, 3, 12])
def test_disjunction_cost_matches_trace(k):
    sources = build(n=12, m=2)
    result, tracer = run_traced(disjunction_top_k, sources, k)
    assert_traced_equals_cost(sources, tracer, result)
    assert not any(e["type"] == "random" for e in tracer.events)


@pytest.mark.parametrize("k", [1, 4, 10])
def test_filter_condition_cost_matches_trace(k):
    sources = build(n=25, m=2, seed=11)
    result, tracer = run_traced(filter_condition_top_k, sources, k)
    assert_traced_equals_cost(sources, tracer, result)
    taus = [value for _, value in tracer.samples("filter.tau")]
    assert taus == sorted(taus, reverse=True)


@pytest.mark.parametrize("k", [1, 2, 6])
def test_boolean_first_cost_matches_trace(k):
    n = 18
    fuzzy = sources_from_columns(independent(n, 1, seed=3), backend="list")[0]
    names = sorted(fuzzy.object_ids())
    rows = {name: {"Artist": "B" if i % 5 == 0 else "X"} for i, name in enumerate(names)}
    boolean = BooleanSource(
        {name: 1.0 if row["Artist"] == "B" else 0.0 for name, row in rows.items()},
        name="artist",
    )
    sources = [boolean, fuzzy]
    result, tracer = run_traced(
        boolean_first_top_k, sources, tnorms.MIN, k, boolean_index=0
    )
    assert_traced_equals_cost(sources, tracer, result)
    # random access only ever touches the fuzzy list, and only for
    # objects delivered by the Boolean scan
    seen_before_each_random(tracer.events)
    assert all(
        e["source"] == fuzzy.name
        for e in tracer.events
        if e["type"] == "random"
    )
