"""Shared fixtures: small seeded workloads reused across the suite."""

from __future__ import annotations

import pytest

from repro.core.sources import sources_from_columns
from repro.workloads.graded_lists import anti_correlated, correlated, independent


@pytest.fixture
def tiny_sources():
    """Three objects, two lists, hand-chosen grades (easy to eyeball)."""
    return sources_from_columns(
        {
            "a": (0.9, 0.5),
            "b": (0.6, 0.8),
            "c": (0.3, 0.4),
        }
    )


@pytest.fixture
def independent_sources():
    """200 objects, 2 independent lists, fixed seed."""
    return sources_from_columns(independent(200, 2, seed=11))


@pytest.fixture
def independent_sources_m3():
    """150 objects, 3 independent lists, fixed seed."""
    return sources_from_columns(independent(150, 3, seed=12))


@pytest.fixture
def correlated_sources():
    return sources_from_columns(correlated(200, 2, seed=13, noise=0.1))


@pytest.fixture
def anti_correlated_sources():
    return sources_from_columns(anti_correlated(200, 2, seed=14))


def make_sources(table):
    """Helper used by parametrized tests that build their own tables."""
    return sources_from_columns(table)
