"""Shared Hypothesis generators for the differential conformance suites.

Every conformance family (core algorithms, scoring kernels, storage
backends, the result cache) samples from the same universe of small
graded databases: clustered grade levels so exact ties and duplicate
grades — the regime where ordering differences between implementations
would surface — are common.  This module is the single home for those
generators; per-suite rule pickers stay local because each suite locks
down a different rule family (oracle-agreement rules vs batch-exact
kernel rules vs storage smoke rules).
"""

from hypothesis import strategies as st

#: Discrete grade levels: few enough that random databases are dense
#: with exact ties and duplicate grades.
GRADE_LEVELS = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@st.composite
def graded_databases(draw, min_m=1, max_m=3, max_n=20, rows="tuple"):
    """A random database as ``(grades_by_object, m)``.

    ``rows`` selects the per-object container (``"tuple"`` or
    ``"list"``) so callers keep their historical shapes — some suites
    mutate rows in place, others rely on hashability.
    """
    m = draw(st.integers(min_value=min_m, max_value=max_m))
    n = draw(st.integers(min_value=1, max_value=max_n))
    grades = draw(
        st.lists(
            st.tuples(*(st.sampled_from(GRADE_LEVELS),) * m),
            min_size=n,
            max_size=n,
        )
    )
    shape = list if rows == "list" else tuple
    return {f"o{i:02d}": shape(row) for i, row in enumerate(grades)}, m


@st.composite
def boolean_databases(draw, max_n=20):
    """A database whose first column is Boolean (grades 0/1)."""
    m = draw(st.integers(min_value=2, max_value=3))
    n = draw(st.integers(min_value=1, max_value=max_n))
    rows = []
    for _ in range(n):
        crisp = draw(st.sampled_from((0.0, 1.0)))
        fuzzy = tuple(
            draw(st.sampled_from(GRADE_LEVELS)) for _ in range(m - 1)
        )
        rows.append((crisp,) + fuzzy)
    return {f"o{i:02d}": row for i, row in enumerate(rows)}, m


def pick_k(table, selector):
    """The three interesting k regimes: 1, N, and k > N."""
    n = len(table)
    return (1, n, n + 3)[selector % 3]
