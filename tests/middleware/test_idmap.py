"""Object-ID mapping: bijection enforcement and re-keyed sources."""

import pytest

from repro.core.sources import ListSource
from repro.errors import IdMappingError
from repro.middleware.idmap import IdMapping, MappedSource


def test_bijection_accepted():
    mapping = IdMapping({"g1": "local-a", "g2": "local-b"})
    assert mapping.to_local("g1") == "local-a"
    assert mapping.to_global("local-b") == "g2"
    assert len(mapping) == 2


def test_non_one_to_one_rejected():
    """Section 4.2: 'Garlic has to be sure that the mapping is
    one-to-one.'"""
    with pytest.raises(IdMappingError):
        IdMapping({"g1": "shared", "g2": "shared"})


def test_unknown_ids_raise():
    mapping = IdMapping({"g1": "local-a"})
    with pytest.raises(IdMappingError):
        mapping.to_local("unknown")
    with pytest.raises(IdMappingError):
        mapping.to_global("unknown")


def test_identity_mapping():
    mapping = IdMapping.identity(["a", "b"])
    assert mapping.to_local("a") == "a"
    assert mapping.covers(["a", "b"])
    assert not mapping.covers(["c"])


def test_mapped_source_translates_both_directions():
    inner = ListSource({"local-a": 0.9, "local-b": 0.4}, name="inner")
    mapping = IdMapping({"g1": "local-a", "g2": "local-b"})
    mapped = MappedSource(inner, mapping)
    cursor = mapped.cursor()
    assert cursor.next().object_id == "g1"
    assert mapped.random_access("g2") == 0.4
    assert len(mapped) == 2


def test_mapped_source_shares_the_counter():
    inner = ListSource({"local-a": 0.9}, name="inner")
    mapped = MappedSource(inner, IdMapping({"g1": "local-a"}))
    mapped.cursor().next()
    mapped.random_access("g1")
    assert inner.counter.snapshot() == (1, 1)


def test_mapped_source_preserves_boolean_metadata():
    from repro.middleware.relational import BooleanSource

    inner = BooleanSource({"local-a": 1.0, "local-b": 0.0}, name="crisp")
    mapped = MappedSource(inner, IdMapping({"g1": "local-a", "g2": "local-b"}))
    assert mapped.is_boolean
    assert mapped.positive_count == 1
