"""Subsystem protocol, list/grader subsystems, binding cache."""

import pytest

from repro.core.query import Atomic
from repro.errors import PlanError
from repro.middleware.list_subsystem import GraderSubsystem, ListSubsystem


def make_list_subsystem():
    subsystem = ListSubsystem("colors")
    subsystem.add_list("Color", "red", {"a": 0.9, "b": 0.2})
    subsystem.add_list("Color", "blue", {"a": 0.1, "b": 0.8})
    return subsystem


def test_attributes_and_supports():
    subsystem = make_list_subsystem()
    assert subsystem.attributes() == frozenset({"Color"})
    assert subsystem.supports(Atomic("Color", "red"))
    assert not subsystem.supports(Atomic("Color", "green"))  # no stored list
    assert not subsystem.supports(Atomic("Shape", "round"))


def test_bind_returns_ranked_list():
    subsystem = make_list_subsystem()
    source = subsystem.bind(Atomic("Color", "red"))
    cursor = source.cursor()
    assert cursor.next().object_id == "a"
    assert len(source) == 2


def test_bind_is_cached_per_atom():
    subsystem = make_list_subsystem()
    atom = Atomic("Color", "red")
    first = subsystem.bind(atom)
    second = subsystem.bind(atom)
    assert first is second  # same counter keeps accumulating
    other = subsystem.bind(Atomic("Color", "blue"))
    assert other is not first


def test_bind_unsupported_raises():
    subsystem = make_list_subsystem()
    with pytest.raises(PlanError):
        subsystem.bind(Atomic("Shape", "round"))


def test_grader_subsystem_grades_on_demand():
    objects = {"a": 10.0, "b": 20.0, "c": 15.0}
    subsystem = GraderSubsystem(
        "numbers",
        objects,
        {"Near": lambda target, value: max(0.0, 1.0 - abs(value - target) / 20.0)},
    )
    source = subsystem.bind(Atomic("Near", 15.0))
    cursor = source.cursor()
    best = cursor.next()
    assert best.object_id == "c"
    assert best.grade == pytest.approx(1.0)
    assert subsystem.object_count() == 3


def test_grader_subsystem_validates_grades():
    subsystem = GraderSubsystem(
        "broken", {"a": 1.0}, {"Bad": lambda target, value: 2.0}
    )
    from repro.errors import GradeError

    with pytest.raises(GradeError):
        subsystem.bind(Atomic("Bad", 0))


def test_unbind_invalidates_the_cached_binding():
    # Regression: bind() used to cache forever with no escape hatch, so
    # a binding that accumulated unwanted state (stale data, a tripped
    # breaker) could never be rebuilt.
    subsystem = make_list_subsystem()
    atom = Atomic("Color", "red")
    first = subsystem.bind(atom)
    assert subsystem.unbind(atom)
    assert subsystem.bind(atom) is not first
    assert not subsystem.unbind(Atomic("Color", "blue"))  # never bound


def test_invalidate_drops_every_binding():
    subsystem = make_list_subsystem()
    red, blue = Atomic("Color", "red"), Atomic("Color", "blue")
    first_red, first_blue = subsystem.bind(red), subsystem.bind(blue)
    assert subsystem.invalidate() == 2
    assert subsystem.bind(red) is not first_red
    assert subsystem.bind(blue) is not first_blue
    assert subsystem.invalidate() == 2


def test_repr_mentions_name_and_attributes():
    assert "colors" in repr(make_list_subsystem())
