"""The middleware engine: registration, binding, evaluation, handles."""

import pytest

from repro.core.graded import GradedSet
from repro.core.naive import grade_everything
from repro.core.planner import Strategy
from repro.core.query import Atomic, Scored, Weighted
from repro.errors import MonotonicityError, PlanError
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.idmap import IdMapping
from repro.middleware.list_subsystem import ListSubsystem
from repro.middleware.relational import RelationalSubsystem
from repro.scoring import means
from repro.scoring.base import FunctionScoring

N = 60


def build_engine(with_mapping=False):
    import random

    rng = random.Random(5)
    rows = {
        f"g{i}": {"Artist": "Beatles" if i % 6 == 0 else "Other"} for i in range(N)
    }
    engine = MiddlewareEngine()
    engine.register(RelationalSubsystem("rdbms", rows))

    colors = ListSubsystem("qbic")
    if with_mapping:
        colors.add_list(
            "Color", "red", {f"local{i}": rng.random() for i in range(N)}
        )
        mapping = IdMapping({f"g{i}": f"local{i}" for i in range(N)})
        engine.register(colors, id_mapping=mapping)
    else:
        colors.add_list("Color", "red", {f"g{i}": rng.random() for i in range(N)})
        engine.register(colors)
    return engine


COLOR = Atomic("Color", "red")
ARTIST = Atomic("Artist", "Beatles")


def test_register_rejects_duplicate_names():
    engine = build_engine()
    with pytest.raises(PlanError):
        engine.register(ListSubsystem("rdbms"))


def test_subsystem_for_routes_by_attribute():
    engine = build_engine()
    assert engine.subsystem_for(COLOR).name == "qbic"
    assert engine.subsystem_for(ARTIST).name == "rdbms"


def test_unsupported_atom_raises():
    engine = build_engine()
    with pytest.raises(PlanError):
        engine.subsystem_for(Atomic("Smell", "rose"))


def test_ambiguous_attribute_raises():
    engine = build_engine()
    rival = ListSubsystem("rival")
    rival.add_list("Color", "red", {f"g{i}": 0.5 for i in range(N)})
    engine.register(rival)
    with pytest.raises(PlanError):
        engine.subsystem_for(COLOR)


def test_duplicate_atoms_rejected():
    engine = build_engine()
    with pytest.raises(PlanError):
        engine.top_k(COLOR & COLOR, 3)


def test_conjunction_top_k_matches_oracle():
    engine = build_engine()
    result = engine.top_k(ARTIST & COLOR, 5)
    sources = engine.bind_all(ARTIST & COLOR)
    expected = grade_everything(sources, lambda g: min(g)).top(5)
    assert result.answers.same_grade_multiset(expected)


def test_beatles_query_uses_boolean_first():
    engine = build_engine()
    plan = engine.explain(ARTIST & COLOR, 5)
    assert plan.strategy is Strategy.BOOLEAN_FIRST


def test_disjunction_uses_mk_algorithm():
    engine = build_engine()
    result = engine.top_k(ARTIST | COLOR, 5)
    assert result.algorithm == "disjunction-max"


def test_id_mapping_end_to_end():
    engine = build_engine(with_mapping=True)
    result = engine.top_k(ARTIST & COLOR, 5)
    # answers must be keyed by GLOBAL ids
    assert all(str(item.object_id).startswith("g") for item in result.answers)
    plain = build_engine(with_mapping=False).top_k(ARTIST & COLOR, 5)
    assert result.answers.same_grade_multiset(plain.answers)


def test_weighted_query_runs():
    engine = build_engine()
    result = engine.top_k(Weighted((ARTIST, COLOR), (0.7, 0.3)), 5)
    sources = engine.bind_all(ARTIST & COLOR)
    from repro.scoring.weighted import WeightedScoring
    from repro.scoring.tnorms import MIN

    expected = grade_everything(
        sources, WeightedScoring(MIN, (0.7, 0.3))
    ).top(5)
    assert result.answers.same_grade_multiset(expected)


def test_user_scored_query_passes_the_guard():
    engine = build_engine()
    user_rule = FunctionScoring(lambda g: min(g) * 0.9 + 0.1 * max(g), "blend")
    result = engine.top_k(Scored(user_rule, (ARTIST, COLOR)), 5)
    assert len(result.answers) == 5


def test_bad_user_rule_is_rejected_by_the_guard():
    engine = build_engine()
    bad = FunctionScoring(lambda g: max(0.0, g[0] - g[1]), "difference")
    with pytest.raises(MonotonicityError):
        engine.top_k(Scored(bad, (ARTIST, COLOR)), 5)


def test_open_query_fetches_disjoint_batches():
    engine = build_engine()
    handle = engine.open_query(COLOR)
    first = handle.fetch(5)
    second = handle.fetch(5)
    assert not set(first.answers.objects()) & set(second.answers.objects())
    assert handle.fetched == 10
    combined = GradedSet(first.answers.as_dict() | second.answers.as_dict())
    expected = grade_everything(engine.bind_all(COLOR), lambda g: g[0]).top(10)
    assert combined.same_grade_multiset(expected)


def test_scored_mean_query():
    engine = build_engine()
    result = engine.top_k(Scored(means.MEAN, (ARTIST, COLOR)), 5)
    expected = grade_everything(
        engine.bind_all(ARTIST & COLOR), means.MEAN
    ).top(5)
    assert result.answers.same_grade_multiset(expected)


def test_negation_query_falls_back_to_naive():
    """NOT makes the compiled rule non-monotone; the planner must refuse
    the sublinear strategies and still answer correctly via the scan."""
    engine = build_engine()
    from repro.core.query import Not

    query = COLOR & Not(ARTIST)
    plan = engine.explain(query, 5)
    assert plan.strategy is Strategy.NAIVE
    result = engine.top_k(query, 5)
    sources = engine.bind_all(query)
    expected = grade_everything(
        sources, lambda g: min(g[0], 1.0 - g[1])
    ).top(5)
    assert result.answers.same_grade_multiset(expected)


def test_lookup_row_merges_relational_attributes():
    engine = build_engine()
    row = engine.lookup_row("g0")
    assert row["Artist"] == "Beatles"
    assert engine.lookup_row("not-an-object") == {}
