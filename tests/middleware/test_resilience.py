"""Retry/backoff, deadlines, circuit breakers, and the exactness property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sources import ListSource, sources_from_columns
from repro.core.threshold import threshold_top_k
from repro.errors import (
    AccessError,
    CircuitOpenError,
    DeadlineExceededError,
    TransientAccessError,
)
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilientSource,
    RetryPolicy,
    VirtualClock,
    resilience_report,
)
from repro.scoring.tnorms import MIN
from repro.workloads.graded_lists import independent


def make_list(n=30, name="L"):
    return ListSource({f"x{i}": (n - i) / n for i in range(n)}, name=name)


def resilient(profile, policy=None, n=30, clock=None):
    clock = clock if clock is not None else VirtualClock()
    faulty = FaultInjectingSource(make_list(n), profile, clock=clock)
    return ResilientSource(faulty, policy, clock=clock)


# ---------------------------------------------------------------- retries


def test_retries_absorb_transient_failures():
    source = resilient(FaultProfile(transient_rate=1.0, max_consecutive=2, seed=0))
    cursor = source.cursor()
    items = cursor.next_batch(30)
    assert len(items) == 30
    assert source.stats.retries > 0
    assert source.stats.exhausted == 0
    # a failed attempt charged nothing: cost equals the fault-free cost
    assert source.counter.sorted_accesses == 30


def test_retries_exhaust_when_failures_outlast_attempts():
    # cap 10 > attempts 3, so the streak outlives the retry budget
    policy = ResiliencePolicy(retry=RetryPolicy(max_attempts=3))
    source = resilient(
        FaultProfile(transient_rate=1.0, max_consecutive=10, seed=0), policy
    )
    with pytest.raises(TransientAccessError):
        source.cursor().next()
    assert source.stats.exhausted == 1
    assert source.stats.failures == 3


def test_backoff_timing_without_jitter_is_exact():
    clock = VirtualClock()
    policy = ResiliencePolicy(
        retry=RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
    )
    source = resilient(
        FaultProfile(transient_rate=1.0, max_consecutive=3, seed=0),
        policy,
        clock=clock,
    )
    assert source.cursor().next() is not None
    # three failed attempts slept base * 2**i for i = 0, 1, 2
    assert clock.now() == pytest.approx(0.1 + 0.2 + 0.4)


def test_backoff_respects_max_delay_cap():
    rng_free = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0, jitter=0.0)
    import random

    assert rng_free.backoff(0, random.Random(0)) == pytest.approx(1.0)
    assert rng_free.backoff(5, random.Random(0)) == pytest.approx(3.0)


def test_backoff_jitter_stays_within_band():
    import random

    policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
    rng = random.Random(42)
    delays = [policy.backoff(0, rng) for _ in range(200)]
    assert all(0.5 <= d <= 1.5 for d in delays)
    assert max(delays) > 1.0 > min(delays)  # jitter actually spreads


def test_deadline_budget_covers_retries_and_sleeps():
    clock = VirtualClock()
    policy = ResiliencePolicy(
        retry=RetryPolicy(
            max_attempts=100, base_delay=1.0, multiplier=1.0, jitter=0.0, deadline=2.5
        )
    )
    source = resilient(
        FaultProfile(transient_rate=1.0, max_consecutive=10**6, seed=0),
        policy,
        clock=clock,
    )
    with pytest.raises(DeadlineExceededError):
        source.cursor().next()
    assert source.stats.deadline_exceeded == 1
    assert clock.now() <= 3.5  # gave up near the budget, not after 100 sleeps


# ---------------------------------------------------------------- breakers


def test_breaker_opens_after_threshold_and_recovers_half_open():
    clock = VirtualClock()
    breaker = CircuitBreaker(failure_threshold=3, recovery_time=10.0, clock=clock)
    assert breaker.state == CircuitBreaker.CLOSED
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    clock.sleep(10.0)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()  # one trial call
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_reopens_when_half_open_trial_fails():
    clock = VirtualClock()
    breaker = CircuitBreaker(failure_threshold=1, recovery_time=5.0, clock=clock)
    breaker.record_failure()
    clock.sleep(5.0)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.opens == 2


def test_open_circuit_rejects_without_touching_the_subsystem():
    policy = ResiliencePolicy(retry=RetryPolicy(max_attempts=1), failure_threshold=2)
    source = resilient(
        FaultProfile(transient_rate=1.0, max_consecutive=10**6, seed=0), policy
    )
    cursor = source.cursor()
    for _ in range(2):
        with pytest.raises(TransientAccessError):
            cursor.next()
    inner = source._inner
    before = inner.injected.transients
    with pytest.raises(CircuitOpenError):
        cursor.next()
    assert inner.injected.transients == before  # breaker short-circuited
    assert source.stats.rejections == 1


def test_random_and_sorted_breakers_are_independent():
    policy = ResiliencePolicy(retry=RetryPolicy(max_attempts=1), failure_threshold=1)
    source = resilient(FaultProfile(break_random_after=0, seed=0), policy)
    with pytest.raises(TransientAccessError):
        source.random_access("x0")
    assert not source.random_access_available()
    assert source.random_breaker.state == CircuitBreaker.OPEN
    # the sorted stream is untouched by the random breaker
    assert source.sorted_breaker.state == CircuitBreaker.CLOSED
    assert source.cursor().next() is not None


# ---------------------------------------------------------------- parsing


def test_retry_policy_parse():
    policy = RetryPolicy.parse("attempts=6,base=0.01,jitter=0,deadline=2")
    assert policy.max_attempts == 6
    assert policy.base_delay == pytest.approx(0.01)
    assert policy.jitter == 0.0
    assert policy.deadline == pytest.approx(2.0)


def test_resilience_policy_parse_splits_breaker_keys():
    policy = ResiliencePolicy.parse("attempts=2,threshold=7,recovery=3.5")
    assert policy.retry.max_attempts == 2
    assert policy.failure_threshold == 7
    assert policy.recovery_time == pytest.approx(3.5)


def test_parse_rejects_unknown_keys():
    with pytest.raises(AccessError):
        RetryPolicy.parse("patience=11")


def test_retry_policy_validates():
    with pytest.raises(AccessError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(AccessError):
        RetryPolicy(jitter=2.0)


# ---------------------------------------------------------------- reporting


def test_resilience_report_walks_wrapper_chains():
    source = resilient(FaultProfile(transient_rate=1.0, max_consecutive=1, seed=0))
    source.cursor().next()
    report = resilience_report([source, make_list(name="clean")])
    assert set(report) == {source.name}
    entry = report[source.name]
    assert entry["retries"] == source.stats.retries
    assert entry["injected"]["transients"] >= 1
    assert entry["sorted_circuit"] == CircuitBreaker.CLOSED


# ------------------------------------------------------ the exactness property


@given(
    fault_seed=st.integers(min_value=0, max_value=10**6),
    data_seed=st.integers(min_value=0, max_value=50),
    rate=st.floats(min_value=0.0, max_value=0.6),
    k=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_resilient_top_k_equals_fault_free_top_k(fault_seed, data_seed, rate, k):
    """Under any seeded schedule of retryable faults, the resilient run
    returns exactly the fault-free answers — and pays the same cost."""
    table = independent(60, 3, seed=data_seed)
    baseline = threshold_top_k(sources_from_columns(table), MIN, k)
    clock = VirtualClock()
    profile = FaultProfile(transient_rate=rate, max_consecutive=2, seed=fault_seed)
    wrapped = [
        ResilientSource(
            FaultInjectingSource(s, profile, clock=clock), clock=clock
        )
        for s in sources_from_columns(table)
    ]
    result = threshold_top_k(wrapped, MIN, k)
    assert [(i.object_id, i.grade) for i in result.answers] == [
        (i.object_id, i.grade) for i in baseline.answers
    ]
    assert result.grades_exact
    assert result.degraded is None
    assert (
        result.cost.database_access_cost == baseline.cost.database_access_cost
    )
