"""Complex objects: containment, shared sub-objects, promoted sources."""

import pytest

from repro.core.sources import ListSource
from repro.errors import IdMappingError
from repro.middleware.complex_objects import Containment, PromotedSource


def photo_source():
    return ListSource(
        {"p1": 0.9, "p2": 0.7, "p3": 0.5, "p4": 0.3, "p5": 0.1},
        name="AdPhotos:red",
    )


def containment():
    # ad2 and ad3 share photo p4 (the section-4.2 complication).
    return Containment({"ad1": ["p1", "p5"], "ad2": ["p2", "p4"], "ad3": ["p3", "p4"]})


def test_containment_navigation():
    c = containment()
    assert c.children_of("ad1") == ("p1", "p5")
    assert set(c.parents_of("p4")) == {"ad2", "ad3"}
    assert c.parents_of("orphan") == ()
    assert c.parents() == {"ad1", "ad2", "ad3"}
    assert c.shared_children() == {"p4"}
    assert len(c) == 3


def test_empty_parent_rejected():
    with pytest.raises(IdMappingError):
        Containment({"ad": []})


def test_unknown_parent_raises():
    with pytest.raises(IdMappingError):
        containment().children_of("nope")


def test_promoted_sorted_access_is_sorted_and_correct():
    promoted = PromotedSource(photo_source(), containment())
    cursor = promoted.cursor()
    items = [cursor.next() for _ in range(3)]
    # ad1 best photo 0.9, ad2 best 0.7, ad3 best 0.5
    assert [(i.object_id, i.grade) for i in items] == [
        ("ad1", 0.9),
        ("ad2", 0.7),
        ("ad3", 0.5),
    ]
    assert cursor.next() is None


def test_promoted_random_access_is_max_over_children():
    promoted = PromotedSource(photo_source(), containment())
    assert promoted.random_access("ad1") == 0.9
    assert promoted.random_access("ad3") == 0.5
    with pytest.raises(IdMappingError):
        promoted.random_access("nope")


def test_shared_child_counts_for_both_parents():
    photos = ListSource({"p1": 0.8, "shared": 0.9}, name="photos")
    c = Containment({"adA": ["p1", "shared"], "adB": ["shared"]})
    promoted = PromotedSource(photos, c)
    cursor = promoted.cursor()
    first, second = cursor.next(), cursor.next()
    # 'shared' streams first (0.9) and reveals BOTH parents at 0.9 ...
    assert {first.object_id, second.object_id} == {"adA", "adB"}
    assert first.grade == second.grade == 0.9


def test_child_level_accounting_reflects_repository_load():
    photos = photo_source()
    promoted = PromotedSource(photos, containment())
    cursor = promoted.cursor()
    cursor.next()  # delivering ad1 requires only photo p1
    assert photos.counter.sorted_accesses == 1
    cursor.next()  # ad2 <- p2
    assert photos.counter.sorted_accesses == 2
    promoted.random_access("ad1")  # probes p1 and p5
    assert photos.counter.random_accesses == 2


def test_promoted_own_counter_counts_parent_level():
    promoted = PromotedSource(photo_source(), containment())
    cursor = promoted.cursor()
    cursor.next()
    promoted.random_access("ad2")
    assert promoted.counter.snapshot() == (1, 1)


def test_promoted_len_is_parent_count():
    assert len(PromotedSource(photo_source(), containment())) == 3
