"""Randomized properties of ID mapping and containment."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.sources import ListSource
from repro.errors import IdMappingError
from repro.middleware.complex_objects import Containment, PromotedSource
from repro.middleware.idmap import IdMapping, MappedSource

ids = st.integers(min_value=0, max_value=10_000)
grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(pairs=st.dictionaries(ids, ids.map(lambda i: f"local-{i}"), max_size=30))
@settings(max_examples=50, deadline=None)
def test_mapping_round_trips_every_id(pairs):
    # dictionaries guarantee unique keys; values may collide -> either a
    # valid bijection or a loud IdMappingError, never silence.
    try:
        mapping = IdMapping(pairs)
    except IdMappingError:
        assert len(set(pairs.values())) < len(pairs)
        return
    for global_id, local_id in pairs.items():
        assert mapping.to_local(global_id) == local_id
        assert mapping.to_global(local_id) == global_id


@given(
    grades_by_local=st.dictionaries(
        ids.map(lambda i: f"l{i}"), grades, min_size=1, max_size=25
    )
)
@settings(max_examples=40, deadline=None)
def test_mapped_source_preserves_ranking(grades_by_local):
    source = ListSource(grades_by_local, name="local")
    mapping = IdMapping({f"g-{local}": local for local in grades_by_local})
    mapped = MappedSource(source, mapping)
    cursor = mapped.cursor()
    delivered = []
    while True:
        item = cursor.next()
        if item is None:
            break
        delivered.append(item)
    assert len(delivered) == len(grades_by_local)
    observed = [item.grade for item in delivered]
    assert observed == sorted(observed, reverse=True)
    for item in delivered:
        local = mapping.to_local(item.object_id)
        assert item.grade == pytest.approx(grades_by_local[local])


@given(
    children_per_parent=st.dictionaries(
        st.integers(min_value=0, max_value=20).map(lambda i: f"ad{i}"),
        st.lists(
            st.integers(min_value=0, max_value=15).map(lambda i: f"p{i}"),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        min_size=1,
        max_size=12,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_promotion_grades_are_max_over_children(children_per_parent, seed):
    import random

    rng = random.Random(seed)
    child_ids = sorted({c for kids in children_per_parent.values() for c in kids})
    child_grades = {c: rng.random() for c in child_ids}
    containment = Containment(children_per_parent)
    promoted = PromotedSource(ListSource(child_grades, name="kids"), containment)
    cursor = promoted.cursor()
    delivered = {}
    while True:
        item = cursor.next()
        if item is None:
            break
        delivered[item.object_id] = item.grade
    assert set(delivered) == set(children_per_parent)
    for parent, kids in children_per_parent.items():
        assert delivered[parent] == pytest.approx(
            max(child_grades[c] for c in kids)
        )
