"""Deadline bookkeeping must never read the wall clock.

The audit outcome (and its regression pin): every deadline, backoff,
breaker-recovery, and token-refill computation in the resilience and
service layers goes through an injected clock —
:class:`~repro.middleware.resilience.MonotonicClock` (``time.monotonic``)
in production, :class:`~repro.middleware.resilience.VirtualClock` in
tests.  ``time.time()`` is wall clock: it jumps on NTP steps and DST,
which turns deadline math into a lottery.  The AST scan below fails if
anyone reintroduces it (a plain text grep would false-positive on the
docstrings that *document* this invariant).
"""

import ast
import pathlib

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent


def wall_clock_calls(path):
    """All ``time.time(...)`` call sites in one file, as line numbers."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            hits.append(node.lineno)
    return hits


def test_no_wall_clock_calls_anywhere_in_src():
    offenders = {}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        hits = wall_clock_calls(path)
        if hits:
            offenders[str(path.relative_to(SRC_ROOT))] = hits
    assert not offenders, (
        "time.time() is wall clock and must not drive deadline/backoff "
        f"math — use the injected clock (MonotonicClock): {offenders}"
    )


def test_monotonic_clock_uses_time_monotonic(monkeypatch):
    """MonotonicClock must follow time.monotonic, not time.time."""
    import time as time_module

    from repro.middleware.resilience import MonotonicClock

    monkeypatch.setattr(time_module, "monotonic", lambda: 123.25)
    monkeypatch.setattr(
        time_module,
        "time",
        lambda: (_ for _ in ()).throw(AssertionError("wall clock read")),
    )
    assert MonotonicClock().now() == 123.25


def test_deadline_budget_ignores_wall_clock_jumps(monkeypatch):
    """A retry deadline keeps honest time across a wall-clock step.

    The wall clock jumps backwards an hour mid-operation; the monotonic
    deadline still expires on schedule.
    """
    import random
    import time as time_module

    from repro.core.graded import GradedSet
    from repro.core.sources import ListSource
    from repro.errors import DeadlineExceededError, TransientAccessError
    from repro.middleware.resilience import (
        MonotonicClock,
        ResiliencePolicy,
        ResilientSource,
        RetryPolicy,
    )

    ticks = {"now": 1000.0}
    monkeypatch.setattr(time_module, "monotonic", lambda: ticks["now"])

    def fake_sleep(seconds):
        ticks["now"] += seconds
        # Simulate an NTP step: the wall clock lurches backwards.  If
        # any deadline math consulted it, the budget would "grow".
        monkeypatch.setattr(time_module, "time", lambda: ticks["now"] - 3600.0)

    monkeypatch.setattr(time_module, "sleep", fake_sleep)

    class AlwaysTransient(ListSource):
        def _grade_of(self, object_id):
            raise TransientAccessError("flaky forever")

    inner = AlwaysTransient(
        GradedSet({f"x{i}": random.Random(0).random() for i in range(5)}),
        name="flaky",
    )
    policy = ResiliencePolicy(
        retry=RetryPolicy(
            max_attempts=50, base_delay=0.2, jitter=0.0, deadline=1.0
        ),
        failure_threshold=1000,
    )
    source = ResilientSource(inner, policy, clock=MonotonicClock())
    try:
        source.random_access("x0")
    except (DeadlineExceededError, TransientAccessError):
        pass  # bounded either by the deadline or by attempts
    # The operation ended within ~the budget: the monotonic clock only
    # moved by the backoff sleeps actually taken, wall-clock jump or not.
    assert ticks["now"] - 1000.0 < 5.0, "deadline math leaked wall time"
