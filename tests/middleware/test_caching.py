"""Middleware-side prefix caching of ranked lists."""


from repro.core.fagin import fagin_top_k
from repro.core.sources import ListSource, sources_from_columns
from repro.middleware.caching import CachedSource
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent


def test_first_read_charges_repository_second_does_not():
    inner = ListSource({"a": 0.9, "b": 0.5, "c": 0.1}, name="L")
    cached = CachedSource(inner)
    first = cached.cursor()
    for _ in range(3):
        first.next()
    assert inner.counter.sorted_accesses == 3
    second = cached.cursor()
    for _ in range(3):
        second.next()
    assert inner.counter.sorted_accesses == 3  # replayed from the cache
    # logical accesses still counted for the algorithms
    assert cached.counter.sorted_accesses == 6
    assert cached.hits >= 3


def test_cache_extends_incrementally():
    inner = ListSource({f"o{i}": (10 - i) / 10 for i in range(10)}, name="L")
    cached = CachedSource(inner)
    cursor = cached.cursor()
    for _ in range(4):
        cursor.next()
    assert inner.counter.sorted_accesses == 4
    resumed = cached.cursor()
    for _ in range(7):
        resumed.next()
    assert inner.counter.sorted_accesses == 7  # only 3 new positions


def test_random_probe_memoized():
    inner = ListSource({"a": 0.9, "b": 0.5}, name="L")
    cached = CachedSource(inner)
    assert cached.random_access("a") == 0.9
    assert cached.random_access("a") == 0.9
    assert inner.counter.random_accesses == 1
    assert cached.counter.random_accesses == 2


def test_sorted_access_seeds_the_probe_cache():
    inner = ListSource({"a": 0.9, "b": 0.5}, name="L")
    cached = CachedSource(inner)
    cached.cursor().next()  # delivers a
    assert cached.random_access("a") == 0.9
    assert inner.counter.random_accesses == 0  # served from the prefix


def test_repeated_queries_amortize_repository_cost():
    table = independent(800, 2, seed=6)
    cached = [CachedSource(s) for s in sources_from_columns(table)]
    first = fagin_top_k(cached, tnorms.MIN, 10)
    repository_after_first = sum(s.repository_cost() for s in cached)
    second = fagin_top_k(cached, tnorms.MIN, 10)
    repository_after_second = sum(s.repository_cost() for s in cached)
    assert second.answers.same_grade_multiset(first.answers)
    assert repository_after_second == repository_after_first  # all cache hits
    # the logical cost of the second run is unchanged
    assert second.database_access_cost == first.database_access_cost


def test_len_and_exhaustion():
    inner = ListSource({"a": 0.9}, name="L")
    cached = CachedSource(inner)
    assert len(cached) == 1
    cursor = cached.cursor()
    assert cursor.next() is not None
    assert cursor.next() is None
