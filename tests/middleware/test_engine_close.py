"""``Engine.close()``: executor shutdown, storage release, reusability."""

import random

import pytest

from repro.core.query import Atomic
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.list_subsystem import ListSubsystem

QUERY = Atomic("Color", "red") & Atomic("Shape", "round")


def build_engine(n=80, seed=41):
    rng = random.Random(seed)
    engine = MiddlewareEngine()
    subsystem = ListSubsystem("qbic")
    subsystem.add_list("Color", "red", {f"o{i}": rng.random() for i in range(n)})
    subsystem.add_list("Shape", "round", {f"o{i}": rng.random() for i in range(n)})
    engine.register(subsystem)
    return engine


def test_close_is_idempotent():
    engine = build_engine()
    engine.top_k(QUERY, 3)
    engine.close()
    engine.close()


def test_context_manager_closes():
    with build_engine() as engine:
        result = engine.top_k(QUERY, 3)
        assert len(result.answers) == 3
    # After the with-block, closing again is harmless.
    engine.close()


def test_close_shuts_down_session_executor():
    engine = build_engine()
    engine.configure_parallelism(3)
    engine.top_k(QUERY, 3)  # spins the pool up
    executor = engine._executor
    assert executor is not None
    engine.close()
    assert executor._pool is None  # released, not just forgotten


def test_close_releases_memmap_storage():
    engine = build_engine()
    engine.configure_storage("memmap")
    engine.top_k(QUERY, 3)  # materializes memmap columns on disk
    bindings = list(engine._wrapped.values())
    assert bindings, "expected cached memmap-backed bindings"
    engine.close()
    from repro.core.sources import iter_wrapper_chain
    from repro.storage.memmap import MemmapSource

    closed = 0
    for binding in bindings:
        for layer in iter_wrapper_chain(binding):
            if isinstance(layer, MemmapSource):
                assert layer.closed
                closed += 1
    assert closed, "no MemmapSource found in the wrapper chains"


def test_close_clears_binding_cache():
    engine = build_engine()
    engine.top_k(QUERY, 3)
    assert engine._wrapped
    engine.close()
    assert not engine._wrapped


def test_closed_engine_can_still_rebind():
    """close() releases resources; the engine object itself stays usable
    for in-RAM work (a fresh bind rebuilds from the subsystems)."""
    engine = build_engine()
    first = engine.top_k(QUERY, 3)
    engine.close()
    second = engine.top_k(QUERY, 3)
    assert [(i.object_id, i.grade) for i in second.answers] == [
        (i.object_id, i.grade) for i in first.answers
    ]
    engine.close()


def test_sharded_memmap_close():
    engine = build_engine()
    engine.configure_storage("memmap", shards=3)
    engine.top_k(QUERY, 3)
    bindings = list(engine._wrapped.values())
    engine.close()
    from repro.core.sources import iter_wrapper_chain
    from repro.storage.memmap import MemmapSource
    from repro.storage.sharded import ShardedSource

    seen = 0
    for binding in bindings:
        for layer in iter_wrapper_chain(binding):
            # ShardedSource fans into parallel shards rather than one
            # _inner; descend explicitly to check each memmap shard.
            if isinstance(layer, ShardedSource):
                for shard in layer.shards:
                    if isinstance(shard, MemmapSource):
                        assert shard.closed
                        seen += 1
    assert seen >= 2, "sharded memmap shards were not closed"


def test_memmap_source_close_direct(tmp_path):
    from repro.storage import build_synthetic_memmap, open_memmap

    directory = str(tmp_path / "col")
    build_synthetic_memmap(directory, 1000)
    source = open_memmap(directory)
    assert source.random_access(0) > 0
    assert not source.closed
    source.close()
    assert source.closed
    source.close()  # idempotent
    with pytest.raises(Exception):
        source.random_access(0)
