"""Catalog statistics and filter-threshold suggestion."""

import pytest

from repro.core.filter_condition import filter_condition_top_k
from repro.core.sources import ListSource, sources_from_columns
from repro.errors import PlanError
from repro.middleware.statistics import (
    GradeHistogram,
    collect_statistics,
    suggest_filter_threshold,
)
from repro.workloads.graded_lists import independent


def uniform_histogram(n=1000, bins=20, seed=0):
    table = independent(n, 1, seed=seed)
    source = ListSource({k: v[0] for k, v in table.items()}, name="L")
    return GradeHistogram.from_source(source, bins)


def test_histogram_construction_validates():
    with pytest.raises(PlanError):
        GradeHistogram([])
    with pytest.raises(PlanError):
        GradeHistogram([0, 0, 0])
    empty = ListSource({}, name="empty")
    with pytest.raises(PlanError):
        GradeHistogram.from_source(empty)


def test_survival_endpoints():
    histogram = uniform_histogram()
    assert histogram.survival(0.0) == 1.0
    assert histogram.survival(1.0) <= 0.1
    # survival is nonincreasing
    values = [histogram.survival(t / 10) for t in range(11)]
    assert values == sorted(values, reverse=True)


def test_survival_tracks_uniform_distribution():
    histogram = uniform_histogram(n=5000)
    for tau in (0.2, 0.5, 0.8):
        assert histogram.survival(tau) == pytest.approx(1 - tau, abs=0.05)


def test_quantile_inverts_survival():
    histogram = uniform_histogram(n=5000)
    for q in (0.1, 0.5, 0.9):
        tau = histogram.quantile(q)
        assert histogram.survival(tau) == pytest.approx(q, abs=0.05)
    with pytest.raises(PlanError):
        histogram.quantile(1.5)


def test_skewed_distribution():
    grades = {f"o{i}": 0.9 + 0.01 * (i % 10) for i in range(100)}
    histogram = GradeHistogram.from_source(ListSource(grades, name="hi"))
    assert histogram.survival(0.5) == 1.0
    assert histogram.survival(0.95) < 1.0


def test_suggest_threshold_expected_yield():
    """The suggested tau should produce roughly safety*k candidates on
    independent uniform lists: N * (1 - tau)^m = safety * k."""
    n, k, m = 4000, 10, 2
    sources = sources_from_columns(independent(n, m, seed=7))
    histograms = collect_statistics(sources)
    tau = suggest_filter_threshold(histograms, k, n, safety=2.0)
    expected_tau = 1 - (2.0 * k / n) ** (1 / m)
    assert tau == pytest.approx(expected_tau, abs=0.05)


def test_suggested_threshold_avoids_restarts():
    n, k = 4000, 10
    table = independent(n, 2, seed=8)
    sources = sources_from_columns(table)
    histograms = collect_statistics(sources)
    tau = suggest_filter_threshold(histograms, k, n, safety=3.0)
    result = filter_condition_top_k(
        sources_from_columns(table), k, initial_tau=max(tau, 1e-6)
    )
    assert result.restarts == 0
    # and it over-retrieves far less than a give-up threshold would
    lazy = filter_condition_top_k(
        sources_from_columns(table), k, initial_tau=0.05
    )
    assert result.database_access_cost < lazy.database_access_cost


def test_suggest_threshold_validation():
    histogram = uniform_histogram()
    with pytest.raises(PlanError):
        suggest_filter_threshold([histogram], 0, 100)
    with pytest.raises(PlanError):
        suggest_filter_threshold([histogram], 5, 0)
    with pytest.raises(PlanError):
        suggest_filter_threshold([histogram], 5, 100, safety=0.5)
    with pytest.raises(PlanError):
        suggest_filter_threshold([], 5, 100)
