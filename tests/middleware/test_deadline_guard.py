"""DeadlineGuard: per-query budgets over shared bindings.

Covers the guard's own semantics (charged accesses guarded, peeks
free, shared counters, bounded overshoot) and the engine's ``deadline``
parameter end to end: late queries degrade to partial bounds instead
of hanging, and ``deadline=None`` leaves the path untouched.
"""

import random

import pytest

from repro.core.graded import GradedSet
from repro.core.query import Atomic
from repro.core.sources import ListSource
from repro.errors import DeadlineExceededError
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.list_subsystem import ListSubsystem
from repro.middleware.resilience import (
    DeadlineGuard,
    VirtualClock,
    guard_deadline,
)


def make_source(n=20, seed=3, name="list"):
    rng = random.Random(seed)
    return ListSource(
        GradedSet({f"x{i}": rng.random() for i in range(n)}), name=name
    )


def build_engine(clock, n=150, seed=21):
    rng = random.Random(seed)
    engine = MiddlewareEngine(clock=clock)
    subsystem = ListSubsystem("qbic")
    subsystem.add_list("Color", "red", {f"i{j}": rng.random() for j in range(n)})
    subsystem.add_list("Shape", "round", {f"i{j}": rng.random() for j in range(n)})
    engine.register(subsystem)
    return engine


# ---------------------------------------------------------------- guard


def test_accesses_flow_before_the_deadline():
    clock = VirtualClock()
    inner = make_source()
    guard = DeadlineGuard(inner, deadline_at=10.0, clock=clock)
    cursor = guard.cursor()
    item = cursor.next()
    assert item is not None
    assert guard.random_access(item.object_id) == pytest.approx(item.grade)
    assert not guard.expired()
    assert guard.remaining() == pytest.approx(10.0)


def test_charged_accesses_refused_after_deadline():
    clock = VirtualClock()
    inner = make_source()
    guard = DeadlineGuard(inner, deadline_at=5.0, clock=clock)
    cursor = guard.cursor()
    cursor.next()
    clock.sleep(5.0)
    assert guard.expired()
    with pytest.raises(DeadlineExceededError):
        cursor.next()
    with pytest.raises(DeadlineExceededError):
        guard.random_access("x0")
    with pytest.raises(DeadlineExceededError):
        guard.random_access_many(["x0", "x1"])


def test_peeks_stay_free_after_deadline():
    clock = VirtualClock()
    inner = make_source()
    guard = DeadlineGuard(inner, deadline_at=0.0, clock=clock)
    clock.sleep(1.0)
    before = inner.counter.snapshot()
    cursor = guard.cursor()
    assert cursor.peek_grade() is not None
    assert len(cursor.peek_batch(5)) == 5
    assert len(guard) == len(inner)
    assert inner.counter.snapshot() == before  # peeks charge nothing


def test_guard_shares_inner_counter_and_name():
    inner = make_source(name="shared")
    guard = DeadlineGuard(inner, deadline_at=100.0, clock=VirtualClock())
    assert guard.name == "shared"
    assert guard.counter is inner.counter
    guard.cursor().next()
    assert inner.counter.sorted_accesses == 1


def test_overshoot_bounded_by_one_access():
    """The check runs *before* the access: once expired, zero further
    charges land — the overshoot is whatever single round was already
    in flight, never more."""
    clock = VirtualClock()
    inner = make_source()
    guard = DeadlineGuard(inner, deadline_at=1.0, clock=clock)
    cursor = guard.cursor()
    cursor.next()
    charged_before = inner.counter.sorted_accesses
    clock.sleep(2.0)
    for _ in range(5):
        with pytest.raises(DeadlineExceededError):
            cursor.next()
    assert inner.counter.sorted_accesses == charged_before


def test_guard_deadline_helper():
    clock = VirtualClock()
    sources = [make_source(name="a"), make_source(name="b")]
    assert guard_deadline(sources, None) == sources  # no deadline: untouched
    guarded = guard_deadline(sources, 5.0, clock=clock)
    assert all(isinstance(g, DeadlineGuard) for g in guarded)
    assert [g.name for g in guarded] == ["a", "b"]


# ---------------------------------------------------------------- engine


def test_engine_deadline_none_is_clean_path():
    clock = VirtualClock()
    engine = build_engine(clock)
    query = Atomic("Color", "red") & Atomic("Shape", "round")
    result = engine.top_k(query, 5)
    assert result.degraded is None
    engine.close()


def test_engine_deadline_generous_budget_exact_answers():
    clock = VirtualClock()
    engine = build_engine(clock)
    query = Atomic("Color", "red") & Atomic("Shape", "round")
    expected = engine.top_k(query, 5)
    result = engine.top_k(query, 5, deadline=3600.0)
    assert result.degraded is None
    assert [(i.object_id, i.grade) for i in result.answers] == [
        (i.object_id, i.grade) for i in expected.answers
    ]
    engine.close()


def test_engine_deadline_exhausted_mid_query_degrades():
    from repro.middleware.faults import FaultProfile

    clock = VirtualClock()
    engine = build_engine(clock)
    # Every access stalls the virtual clock; a small budget dies mid-run.
    engine.configure_resilience(
        None, fault_profile=FaultProfile(latency_rate=1.0, latency=0.25, seed=2)
    )
    query = Atomic("Color", "red") & Atomic("Shape", "round")
    result = engine.top_k(query, 5, deadline=2.0)
    assert result.degraded is not None
    assert not result.degraded.complete
    assert result.degraded.fallback in ("partial-bounds", "nra-sorted-only")
    assert any(
        "deadline" in reason.lower() or "refused" in reason
        for reason in result.degraded.failed_sources.values()
    )
    assert result.cost.database_access_cost > 0
    engine.close()


def test_engine_deadline_zero_budget_degrades_immediately():
    clock = VirtualClock()
    engine = build_engine(clock)
    clock.sleep(1.0)
    query = Atomic("Color", "red") & Atomic("Shape", "round")
    result = engine.top_k(query, 5, deadline=-1.0)
    assert result.degraded is not None
    assert result.grades_exact is False
    engine.close()


def test_engine_deadline_does_not_leak_into_next_query():
    """The guard is per-call: a later query without a deadline runs clean
    on the same cached (shared) bindings."""
    from repro.middleware.faults import FaultProfile

    clock = VirtualClock()
    engine = build_engine(clock)
    engine.configure_resilience(
        None, fault_profile=FaultProfile(latency_rate=1.0, latency=0.5, seed=4)
    )
    query = Atomic("Color", "red") & Atomic("Shape", "round")
    degraded = engine.top_k(query, 5, deadline=1.0)
    assert degraded.degraded is not None
    clean = engine.top_k(query, 5)  # no deadline: runs to completion
    assert clean.degraded is None
    assert len(clean.answers) == 5
    engine.close()
