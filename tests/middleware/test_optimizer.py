"""Cost-model-aware planning and the robustness ablation."""


from repro.core.cost import RANDOM_EXPENSIVE, SORTED_EXPENSIVE, UNIFORM, CostModel
from repro.core.fagin import fagin_top_k
from repro.core.naive import naive_top_k
from repro.core.planner import Strategy
from repro.core.sources import sources_from_columns
from repro.middleware.optimizer import compare_under_models, plan_with_charges
from repro.scoring import conorms, tnorms
from repro.workloads.graded_lists import independent


def sources(n=400, m=2, seed=5):
    return sources_from_columns(independent(n, m, seed=seed))


def test_uniform_charges_match_core_planner_choice():
    charged = plan_with_charges(sources(), tnorms.MIN, 10, {})
    assert charged.plan.strategy in (Strategy.THRESHOLD, Strategy.FAGIN)


def test_expensive_random_access_pushes_toward_nra():
    models = {"A1": RANDOM_EXPENSIVE, "A2": RANDOM_EXPENSIVE}
    charged = plan_with_charges(sources(), tnorms.MIN, 10, models)
    assert charged.plan.strategy in (Strategy.NRA, Strategy.THRESHOLD)
    # with random probes 10x, a random-free strategy must win over A0
    assert charged.plan.strategy is not Strategy.FAGIN


def test_max_rule_still_wins_under_any_charges():
    for models in ({}, {"A1": SORTED_EXPENSIVE}, {"A1": RANDOM_EXPENSIVE}):
        charged = plan_with_charges(sources(), conorms.MAX, 10, models)
        assert charged.plan.strategy is Strategy.DISJUNCTION


def test_model_names_recorded():
    charged = plan_with_charges(
        sources(), tnorms.MIN, 10, {"A1": SORTED_EXPENSIVE}
    )
    assert charged.model_names["A1"] == "sorted-expensive"
    assert charged.model_names["A2"] == "uniform"


def test_compare_under_models_preserves_algorithm_ranking():
    """The paper: results are 'fairly robust with respect to a choice of
    cost measure'.  A0 beats naive under all three charge models."""
    table = independent(2000, 2, seed=9)
    fa = fagin_top_k(sources_from_columns(table), tnorms.MIN, 10)
    naive = naive_top_k(sources_from_columns(table), tnorms.MIN, 10)
    models = (UNIFORM, SORTED_EXPENSIVE, RANDOM_EXPENSIVE)
    fa_costs = compare_under_models(fa.cost, models)
    naive_costs = compare_under_models(naive.cost, models)
    for model in models:
        assert fa_costs[model.name] < naive_costs[model.name]


def test_custom_model_charges():
    table = independent(100, 2, seed=1)
    result = fagin_top_k(sources_from_columns(table), tnorms.MIN, 5)
    model = CostModel(sorted_charge=0.0, random_charge=1.0, name="random-only")
    assert result.cost.cost(model) == result.cost.random_access_cost
