"""The fault injector: seeded schedules, caps, permanent failure modes."""

import pytest

from repro.core.sources import ListSource
from repro.errors import AccessError, TransientAccessError
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.resilience import VirtualClock


def make_list(n=30, name="L"):
    return ListSource({f"x{i}": (n - i) / n for i in range(n)}, name=name)


def wrap(profile, n=30, name="L", clock=None):
    return FaultInjectingSource(make_list(n, name), profile, clock=clock)


def drain_schedule(source, accesses=40):
    """Outcome ('ok'/'fail') of each of the next `accesses` sorted reads."""
    outcomes = []
    cursor = source.cursor()
    for _ in range(accesses):
        try:
            item = cursor.next()
        except TransientAccessError:
            outcomes.append("fail")
        else:
            outcomes.append("ok" if item is not None else "end")
    return outcomes


def test_schedule_is_deterministic_across_instances():
    profile = FaultProfile(transient_rate=0.4, seed=9)
    first = drain_schedule(wrap(profile))
    second = drain_schedule(wrap(profile))
    assert first == second
    assert "fail" in first  # the schedule actually injects something


def test_schedule_depends_on_seed_and_source_name():
    base = drain_schedule(wrap(FaultProfile(transient_rate=0.4, seed=9)))
    reseeded = drain_schedule(wrap(FaultProfile(transient_rate=0.4, seed=10)))
    renamed = drain_schedule(wrap(FaultProfile(transient_rate=0.4, seed=9), name="M"))
    assert base != reseeded or base != renamed


def test_consecutive_failures_are_capped():
    # rate 1.0 would fail forever without the cap; with cap 2 the pattern
    # is fail, fail, succeed, repeating — so attempts > cap always win.
    source = wrap(FaultProfile(transient_rate=1.0, max_consecutive=2, seed=0))
    outcomes = drain_schedule(source, 9)
    assert outcomes == ["fail", "fail", "ok"] * 3


def test_failed_access_charges_nothing():
    source = wrap(FaultProfile(transient_rate=1.0, max_consecutive=1, seed=0))
    cursor = source.cursor()
    with pytest.raises(TransientAccessError):
        cursor.next()
    assert source.counter.sorted_accesses == 0
    assert cursor.next() is not None
    assert source.counter.sorted_accesses == 1


def test_peeks_never_fail():
    source = wrap(FaultProfile(transient_rate=1.0, max_consecutive=10**6, seed=0))
    assert len(source.cursor().peek_batch(10)) == 10
    assert source.counter.sorted_accesses == 0


def test_break_random_after_counts_served_probes():
    source = wrap(FaultProfile(break_random_after=3, seed=0))
    for i in range(3):
        source.random_access(f"x{i}")
    with pytest.raises(TransientAccessError, match="permanently down"):
        source.random_access("x3")
    with pytest.raises(TransientAccessError):  # permanent, not transient
        source.random_access("x3")
    # sorted access still works in this regime (the NRA scenario)
    assert source.cursor().next() is not None


def test_break_random_is_prospective_for_bulk_probes():
    # A bulk probe that would cross the budget fails whole: the budget
    # can never be over-served through one big random_access_many.
    source = wrap(FaultProfile(break_random_after=3, seed=0))
    with pytest.raises(TransientAccessError):
        source.random_access_many([f"x{i}" for i in range(5)])
    assert source.random_served == 0
    assert source.random_access_many(["x0", "x1"]) == {"x0": 1.0, "x1": 29 / 30}


def test_kill_after_stops_everything():
    source = wrap(FaultProfile(kill_after=4, seed=0))
    cursor = source.cursor()
    assert len(cursor.next_batch(4)) == 4
    with pytest.raises(TransientAccessError, match="dead"):
        cursor.next()
    with pytest.raises(TransientAccessError, match="dead"):
        source.random_access("x0")


def test_kill_after_is_prospective_for_batches():
    source = wrap(FaultProfile(kill_after=4, seed=0))
    cursor = source.cursor()
    with pytest.raises(TransientAccessError, match="dead"):
        cursor.next_batch(5)  # would cross the budget: atomic refusal
    assert source.served == 0


def test_final_short_batch_not_refused_for_phantom_items():
    # Requesting past the end of the list must count only the items the
    # batch would actually ship.
    source = wrap(FaultProfile(kill_after=5, seed=0), n=5)
    cursor = source.cursor()
    assert len(cursor.next_batch(100)) == 5  # 5 real items == budget


def test_latency_spike_advances_the_clock():
    clock = VirtualClock()
    source = wrap(
        FaultProfile(latency_rate=1.0, latency=0.25, seed=0), clock=clock
    )
    source.cursor().next()
    assert clock.now() == pytest.approx(0.25)
    assert source.injected.latency_spikes == 1


def test_parse_presets_and_overrides():
    assert FaultProfile.parse("flaky").transient_rate == 0.3
    refined = FaultProfile.parse("flaky,seed=7")
    assert refined.transient_rate == 0.3 and refined.seed == 7
    pairs = FaultProfile.parse("transient=0.2,kill-after=100")
    assert pairs.transient_rate == 0.2 and pairs.kill_after == 100
    assert FaultProfile.parse("no-random").break_random_after == 0


def test_parse_rejects_unknown_presets_and_keys():
    with pytest.raises(AccessError):
        FaultProfile.parse("spicy")
    with pytest.raises(AccessError):
        FaultProfile.parse("verbosity=11")


def test_profile_validates_rates():
    with pytest.raises(AccessError):
        FaultProfile(transient_rate=1.5)
    with pytest.raises(AccessError):
        FaultProfile(max_consecutive=-1)
