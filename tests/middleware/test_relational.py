"""The relational subsystem: crisp grades, selection, sorted streaming."""

import pytest

from repro.core.query import Atomic
from repro.middleware.relational import BooleanSource, RelationalSubsystem

ROWS = {
    "cd1": {"Artist": "Beatles", "Year": 1967},
    "cd2": {"Artist": "Beatles", "Year": 1969},
    "cd3": {"Artist": "Miles Davis", "Year": 1959},
    "cd4": {"Artist": "Glenn Gould", "Year": 1981},
}


def make():
    return RelationalSubsystem("rdbms", ROWS)


def test_attributes_are_union_of_columns():
    assert make().attributes() == frozenset({"Artist", "Year"})


def test_grades_are_crisp():
    source = make().bind(Atomic("Artist", "Beatles"))
    graded = source.as_graded_set()
    assert graded.is_crisp()
    assert graded["cd1"] == 1.0
    assert graded["cd3"] == 0.0


def test_sorted_access_streams_ones_first():
    source = make().bind(Atomic("Artist", "Beatles"))
    cursor = source.cursor()
    first_two = {cursor.next().object_id, cursor.next().object_id}
    assert first_two == {"cd1", "cd2"}
    assert cursor.next().grade == 0.0


def test_boolean_source_metadata():
    source = make().bind(Atomic("Artist", "Beatles"))
    assert isinstance(source, BooleanSource)
    assert source.is_boolean
    assert source.positive_count == 2


def test_select_returns_crisp_set():
    assert make().select("Artist", "Beatles") == {"cd1", "cd2"}
    assert make().select("Year", 1959) == {"cd3"}
    assert make().select("Artist", "Nobody") == frozenset()


def test_non_string_targets():
    source = make().bind(Atomic("Year", 1967))
    assert source.as_graded_set()["cd1"] == 1.0
    assert source.as_graded_set()["cd2"] == 0.0


def test_row_access_and_len():
    subsystem = make()
    assert subsystem.row("cd1")["Artist"] == "Beatles"
    assert len(subsystem) == 4
    with pytest.raises(KeyError):
        subsystem.row("nope")


def test_rows_are_copied_in_and_out():
    rows = {"cd1": {"Artist": "Beatles"}}
    subsystem = RelationalSubsystem("r", rows)
    rows["cd1"]["Artist"] = "Mutated"
    assert subsystem.row("cd1")["Artist"] == "Beatles"
    fetched = subsystem.row("cd1")
    fetched["Artist"] = "Mutated again"
    assert subsystem.row("cd1")["Artist"] == "Beatles"
