"""End-to-end resilience through the engine: wrapping, reports, resets."""

import random

import pytest

from repro.core.query import Atomic
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.idmap import IdMapping
from repro.middleware.list_subsystem import ListSubsystem
from repro.middleware.resilience import ResiliencePolicy, ResilientSource

N = 80
SHAPE = Atomic("Shape", "round")
COLOR = Atomic("Color", "red")
QUERY = SHAPE & COLOR


def build_engine(**engine_kwargs):
    rng = random.Random(5)
    shapes = ListSubsystem("shapes")
    shapes.add_list("Shape", "round", {f"g{i}": rng.random() for i in range(N)})
    colors = ListSubsystem("qbic")
    colors.add_list("Color", "red", {f"local{i}": rng.random() for i in range(N)})
    mapping = IdMapping({f"g{i}": f"local{i}" for i in range(N)})
    engine = MiddlewareEngine(**engine_kwargs)
    engine.register(shapes)
    engine.register(colors, id_mapping=mapping)
    return engine


def answers_of(result):
    return [(item.object_id, item.grade) for item in result.answers]


def test_faulty_engine_reproduces_the_clean_answers():
    clean = build_engine().top_k(QUERY, 10)
    faulty = build_engine(
        fault_profile=FaultProfile(transient_rate=0.3, seed=11),
        resilience=ResiliencePolicy(),
    ).top_k(QUERY, 10)
    assert answers_of(faulty) == answers_of(clean)
    assert faulty.degraded is None
    assert faulty.cost.database_access_cost == clean.cost.database_access_cost


def test_result_carries_the_resilience_report():
    engine = build_engine(
        fault_profile=FaultProfile(transient_rate=0.4, seed=3),
        resilience=ResiliencePolicy(),
    )
    report = engine.top_k(QUERY, 5).extras["resilience"]
    assert len(report) == 2
    assert any(entry["injected"]["transients"] for entry in report.values())
    assert all("sorted_circuit" in entry for entry in report.values())


def test_clean_engine_attaches_no_report():
    assert "resilience" not in build_engine().top_k(QUERY, 5).extras


def test_wrapping_order_is_fault_mapping_resilience():
    engine = build_engine(
        fault_profile=FaultProfile(), resilience=ResiliencePolicy()
    )
    outer = engine.bind(COLOR)
    assert isinstance(outer, ResilientSource)
    assert isinstance(outer._inner._inner, FaultInjectingSource)
    # global ids flow out of the whole stack despite the local-id mapping
    assert outer.cursor().peek_batch(1)[0].object_id.startswith("g")


def test_wrapped_bindings_are_cached_until_invalidated():
    engine = build_engine(resilience=ResiliencePolicy())
    first = engine.bind(COLOR)
    assert engine.bind(COLOR) is first  # breaker state persists
    engine.invalidate(COLOR)
    assert engine.bind(COLOR) is not first
    engine.invalidate()
    assert engine.bind(COLOR) is not first


def test_per_subsystem_policies_with_wildcard_default():
    engine = build_engine(
        resilience={
            "qbic": ResiliencePolicy(failure_threshold=2),
            "*": ResiliencePolicy(failure_threshold=9),
        }
    )
    assert engine.bind(COLOR).policy.failure_threshold == 2
    assert engine.bind(SHAPE).policy.failure_threshold == 9


def test_per_subsystem_fault_profile_only_hits_the_named_subsystem():
    engine = build_engine(
        fault_profile={"qbic": FaultProfile(transient_rate=1.0, seed=0)},
        resilience=ResiliencePolicy(),
    )
    assert isinstance(engine.bind(COLOR)._inner._inner, FaultInjectingSource)
    assert not isinstance(engine.bind(SHAPE)._inner, FaultInjectingSource)


def test_configure_resilience_rewraps_existing_bindings():
    engine = build_engine()
    plain = engine.bind(COLOR)
    assert not isinstance(plain, ResilientSource)
    engine.configure_resilience(ResiliencePolicy())
    assert isinstance(engine.bind(COLOR), ResilientSource)


def test_open_query_handle_reports_resilience():
    engine = build_engine(
        fault_profile=FaultProfile(transient_rate=0.4, seed=3),
        resilience=ResiliencePolicy(),
    )
    clean = build_engine().open_query(QUERY)
    handle = engine.open_query(QUERY)
    first = handle.fetch(5)
    assert answers_of(first) == answers_of(clean.fetch(5))
    assert "resilience" in first.extras


def test_degradation_surfaces_through_the_engine():
    clean = build_engine().top_k(QUERY, 10)
    engine = build_engine(
        fault_profile=FaultProfile(break_random_after=4, seed=0),
        resilience=ResiliencePolicy(),
    )
    result = engine.top_k(QUERY, 10)
    assert result.degraded is not None and result.degraded.complete
    assert answers_of(result) == answers_of(clean)


@pytest.mark.parametrize("k", [1, 5, 10])
def test_engine_resilience_is_cost_neutral(k):
    clean = build_engine().top_k(QUERY, k)
    resilient_only = build_engine(resilience=ResiliencePolicy()).top_k(QUERY, k)
    assert answers_of(resilient_only) == answers_of(clean)
    assert (
        resilient_only.cost.database_access_cost
        == clean.cost.database_access_cost
    )
