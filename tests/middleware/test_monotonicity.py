"""The monotonicity guard for user-defined scoring functions."""

import pytest

from repro.errors import MonotonicityError
from repro.middleware.monotonicity import ensure_monotone
from repro.scoring import tnorms
from repro.scoring.base import FunctionScoring


def test_catalog_rules_pass_without_testing():
    assert ensure_monotone(tnorms.MIN, 2) is tnorms.MIN


def test_good_user_rule_is_certified():
    user = FunctionScoring(lambda g: 0.5 * g[0] + 0.5 * g[1], "user-avg")
    certified = ensure_monotone(user, 2)
    assert certified is user


def test_plain_callable_is_wrapped_and_certified():
    certified = ensure_monotone(lambda g: min(g), 3)
    assert certified.is_monotone


def test_declared_non_monotone_is_rejected_immediately():
    user = FunctionScoring(lambda g: min(g), "liar", is_monotone=False)
    with pytest.raises(MonotonicityError):
        ensure_monotone(user, 2)


def test_violating_user_rule_is_caught_with_witness():
    user = FunctionScoring(lambda g: max(0.0, g[0] - g[1]), "difference")
    with pytest.raises(MonotonicityError) as excinfo:
        ensure_monotone(user, 2)
    assert "difference" in str(excinfo.value)


def test_subtle_violation_is_caught():
    # Monotone except in a small region: g0 near 1 penalized.
    def sneaky(grades):
        value = min(grades)
        if grades[0] > 0.95:
            value *= 0.5
        return value

    with pytest.raises(MonotonicityError):
        ensure_monotone(FunctionScoring(sneaky, "sneaky"), 2, trials=5000)
