"""Concurrent ``Engine.top_k`` from many threads against one engine.

The serving layer relies on the engine being safely shareable: bindings
are built once under the bind lock (one wrapper stack, one breaker, one
fault schedule per atom), all per-query algorithm state is local, and
per-request tracers never interleave.  These tests drive one engine hard
from plain threads — no QueryService in the loop — to pin that contract
where it lives.
"""

import random
import threading

from repro.core.query import Atomic
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.list_subsystem import ListSubsystem
from repro.observability import QueryTracer

THREADS = 8
ROUNDS = 5
N = 200


def build_engine(clock=None):
    rng = random.Random(31)
    engine = MiddlewareEngine(clock=clock)
    subsystem = ListSubsystem("qbic")
    subsystem.add_list("Color", "red", {f"o{i}": rng.random() for i in range(N)})
    subsystem.add_list("Shape", "round", {f"o{i}": rng.random() for i in range(N)})
    engine.register(subsystem)
    return engine


QUERY = Atomic("Color", "red") & Atomic("Shape", "round")


def hammer(engine, work, threads=THREADS):
    """Run ``work(thread_index)`` from many threads; re-raise failures."""
    errors = []

    def runner(index):
        try:
            work(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    pool = [threading.Thread(target=runner, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=60)
    if errors:
        raise errors[0]
    return errors


def test_concurrent_top_k_identical_answers():
    engine = build_engine()
    expected = engine.top_k(QUERY, 5)
    want = [(i.object_id, i.grade) for i in expected.answers]
    results = [None] * THREADS

    def work(index):
        for _ in range(ROUNDS):
            results[index] = engine.top_k(QUERY, 5)

    hammer(engine, work)
    for result in results:
        assert [(i.object_id, i.grade) for i in result.answers] == want
        assert result.algorithm == expected.algorithm
    engine.close()


def test_concurrent_binds_share_one_wrapper_stack():
    """All threads racing to bind the same atom get the same object."""
    engine = build_engine()
    atom = Atomic("Color", "red")
    seen = [None] * THREADS
    barrier = threading.Barrier(THREADS, timeout=10.0)

    def work(index):
        barrier.wait()  # maximize the race on the cold cache
        seen[index] = engine.bind(atom)

    hammer(engine, work)
    assert all(source is seen[0] for source in seen)
    engine.close()


def test_concurrent_queries_with_shared_breaker_state():
    """Resilience-wrapped bindings stay shared and consistent under
    concurrent queries (one breaker per atom, counts sane)."""
    from repro.middleware.faults import FaultProfile
    from repro.middleware.resilience import ResiliencePolicy, RetryPolicy

    engine = build_engine()
    engine.configure_resilience(
        ResiliencePolicy(retry=RetryPolicy(max_attempts=5, base_delay=0.0)),
        fault_profile=FaultProfile(transient_rate=0.1, seed=17),
    )
    expected = engine.top_k(QUERY, 5)
    want = [(i.object_id, i.grade) for i in expected.answers]

    def work(index):
        for _ in range(ROUNDS):
            result = engine.top_k(QUERY, 5)
            # Bounded transients + retries: answers stay exact.
            assert result.degraded is None
            assert [(i.object_id, i.grade) for i in result.answers] == want

    hammer(engine, work, threads=4)
    engine.close()


def test_per_query_tracers_stay_isolated():
    """Each thread's tracer sees exactly one query's timeline."""
    engine = build_engine()
    tracers = [QueryTracer() for _ in range(THREADS)]

    def work(index):
        engine.top_k(QUERY, 5, tracer=tracers[index])

    hammer(engine, work)
    reference = engine.top_k(QUERY, 5, tracer=QueryTracer())
    counts = {len(tracer.events) for tracer in tracers}
    assert len(counts) == 1, "tracers saw different event counts"
    for tracer in tracers:
        assert tracer.events, "a thread's tracer recorded nothing"
    engine.close()


def test_shared_metrics_registry_totals_add_up():
    """A metrics-carrying tracer per thread, one shared registry."""
    from repro.observability import MetricsRegistry

    engine = build_engine()
    registry = MetricsRegistry()
    single = build_engine()
    single_tracer = QueryTracer(metrics=MetricsRegistry())
    single.top_k(QUERY, 5, tracer=single_tracer)
    per_query = single_tracer.metrics.counter_total("accesses.sorted")
    single.close()

    def work(index):
        for _ in range(ROUNDS):
            engine.top_k(QUERY, 5, tracer=QueryTracer(metrics=registry))

    hammer(engine, work, threads=4)
    total = registry.counter_total("accesses.sorted")
    assert total == per_query * 4 * ROUNDS
    engine.close()


def test_concurrent_mixed_queries_and_invalidations():
    """Queries racing cache invalidation still answer correctly."""
    engine = build_engine()
    expected = engine.top_k(QUERY, 5)
    want = [(i.object_id, i.grade) for i in expected.answers]
    stop = threading.Event()

    def invalidator():
        while not stop.is_set():
            engine.invalidate()

    chaos = threading.Thread(target=invalidator)
    chaos.start()
    try:

        def work(index):
            for _ in range(ROUNDS):
                result = engine.top_k(QUERY, 5)
                assert [(i.object_id, i.grade) for i in result.answers] == want

        hammer(engine, work, threads=4)
    finally:
        stop.set()
        chaos.join(timeout=10)
    engine.close()


def test_concurrent_deadline_and_clean_queries():
    """Deadline-guarded and unguarded queries share bindings safely."""
    engine = build_engine()
    expected = engine.top_k(QUERY, 5)
    want = [(i.object_id, i.grade) for i in expected.answers]

    def work(index):
        for round_index in range(ROUNDS):
            if index % 2 == 0:
                result = engine.top_k(QUERY, 5, deadline=3600.0)
            else:
                result = engine.top_k(QUERY, 5)
            assert result.degraded is None
            assert [(i.object_id, i.grade) for i in result.answers] == want

    hammer(engine, work)
    engine.close()
