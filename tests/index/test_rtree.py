"""R-tree: invariants, range queries, best-first k-NN."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.index.base import LinearScanIndex
from repro.index.rtree import RTree


def random_items(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return [(i, rng.random(dim)) for i in range(n)]


def scan_of(items, dim):
    scan = LinearScanIndex(dim)
    for object_id, vector in items:
        scan.insert(object_id, vector)
    return scan


def test_parameters_validated():
    with pytest.raises(IndexError_):
        RTree(0)
    with pytest.raises(IndexError_):
        RTree(2, max_entries=2)
    with pytest.raises(IndexError_):
        RTree(2, max_entries=16, min_entries=10)


def test_insert_and_len():
    tree = RTree(2)
    for object_id, vector in random_items(100, 2):
        tree.insert(object_id, vector)
    assert len(tree) == 100
    tree.check_invariants()


def test_bulk_load_invariants_and_height():
    items = random_items(500, 3, seed=1)
    tree = RTree.bulk_load(items, 3)
    assert len(tree) == 500
    tree.check_invariants()
    assert tree.height() >= 2


def test_empty_tree_queries():
    tree = RTree(2)
    assert tree.range_query([0, 0], [1, 1]) == []
    assert tree.knn([0.5, 0.5], 3) == []


def test_range_query_matches_scan():
    items = random_items(300, 2, seed=2)
    tree = RTree.bulk_load(items, 2)
    scan = scan_of(items, 2)
    lo, hi = [0.2, 0.3], [0.6, 0.9]
    assert sorted(tree.range_query(lo, hi)) == sorted(scan.range_query(lo, hi))


def test_knn_matches_scan_after_inserts():
    tree = RTree(3)
    items = random_items(400, 3, seed=3)
    for object_id, vector in items:
        tree.insert(object_id, vector)
    scan = scan_of(items, 3)
    query = np.array([0.5, 0.5, 0.5])
    mine = [d for _, d in tree.knn(query, 10)]
    theirs = [d for _, d in scan.knn(query, 10)]
    assert mine == pytest.approx(theirs)


def test_knn_distances_are_sorted():
    tree = RTree.bulk_load(random_items(200, 2, seed=4), 2)
    distances = [d for _, d in tree.knn([0.1, 0.9], 15)]
    assert distances == sorted(distances)


def test_knn_visits_fewer_nodes_than_full_tree():
    items = random_items(2000, 2, seed=5)
    tree = RTree.bulk_load(items, 2)
    tree.stats.reset()
    tree.knn([0.5, 0.5], 5)
    # far fewer distance evaluations than a scan
    assert tree.stats.distance_evaluations < len(items) / 4


def test_dimension_mismatch_rejected():
    tree = RTree(3)
    with pytest.raises(IndexError_):
        tree.insert("x", [0.1, 0.2])
    with pytest.raises(ValueError):
        tree.knn([0.1, 0.2, 0.3], 0)


@given(
    seed=st.integers(min_value=0, max_value=1000),
    n=st.integers(min_value=1, max_value=120),
    k=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=25, deadline=None)
def test_knn_property_matches_scan(seed, n, k):
    items = random_items(n, 2, seed=seed)
    tree = RTree.bulk_load(items, 2)
    scan = scan_of(items, 2)
    rng = np.random.default_rng(seed + 1)
    query = rng.random(2)
    mine = sorted(d for _, d in tree.knn(query, k))
    theirs = sorted(d for _, d in scan.knn(query, k))
    assert mine == pytest.approx(theirs)


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=15, deadline=None)
def test_incremental_insert_keeps_invariants(seed):
    items = random_items(80, 2, seed=seed)
    tree = RTree(2, max_entries=4)
    for object_id, vector in items:
        tree.insert(object_id, vector)
    tree.check_invariants()
    assert len(tree) == 80
