"""VA-file: bound soundness, exact k-NN, graceful high-dim behavior."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.index.base import LinearScanIndex
from repro.index.vafile import VAFile


def build(n, dim, bits=4, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.random((n, dim))
    va = VAFile(dim, bits=bits)
    scan = LinearScanIndex(dim)
    for i in range(n):
        va.insert(i, points[i])
        scan.insert(i, points[i])
    return va, scan, rng


def test_parameter_validation():
    with pytest.raises(IndexError_):
        VAFile(2, bits=0)
    with pytest.raises(IndexError_):
        VAFile(2, bits=20)
    va = VAFile(2)
    with pytest.raises(IndexError_):
        va.insert("x", [1.5, 0.0])


def test_bounds_bracket_the_true_distance():
    va, _, rng = build(100, 6, seed=1)
    query = rng.random(6)
    for index in range(50):
        lower, upper = va._bounds(va._approximations[index], query)
        true = float(np.linalg.norm(va._vectors[index] - query))
        assert lower <= true + 1e-9
        assert true <= upper + 1e-9


def test_knn_matches_scan():
    va, scan, rng = build(500, 8, seed=2)
    for _ in range(5):
        query = rng.random(8)
        mine = sorted(d for _, d in va.knn(query, 7))
        theirs = sorted(d for _, d in scan.knn(query, 7))
        assert mine == pytest.approx(theirs)


def test_range_query_matches_scan():
    va, scan, _ = build(400, 3, seed=3)
    lo, hi = [0.2, 0.1, 0.3], [0.7, 0.8, 0.9]
    assert sorted(va.range_query(lo, hi)) == sorted(scan.range_query(lo, hi))


def test_refinement_touches_few_full_vectors():
    va, _, rng = build(2000, 8, bits=6, seed=4)
    va.stats.reset()
    va.knn(rng.random(8), 10)
    # approximations are all scanned, but full vectors barely
    assert va.stats.node_accesses == 2000
    assert va.stats.distance_evaluations < 400


def test_graceful_degradation_with_dimension():
    """Unlike the grid file, the VA-file works at any dimension; its
    refinement cost degrades smoothly rather than exploding."""
    evaluations = {}
    for dim in (4, 16, 64):
        va, _, rng = build(800, dim, bits=6, seed=dim)
        va.stats.reset()
        va.knn(rng.random(dim), 5)
        evaluations[dim] = va.stats.distance_evaluations
    assert evaluations[64] <= 800  # never worse than the scan
    assert evaluations[4] <= evaluations[64]


def test_more_bits_prune_better():
    results = {}
    for bits in (2, 8):
        va, _, rng = build(1500, 10, bits=bits, seed=7)
        va.stats.reset()
        va.knn(rng.random(10), 5)
        results[bits] = va.stats.distance_evaluations
    assert results[8] < results[2]


def test_approximation_file_is_much_smaller():
    va, _, _ = build(1000, 16, bits=4)
    assert va.approximation_bytes() * 8 < va.vector_bytes()


def test_empty_and_k_validation():
    va = VAFile(3)
    assert va.knn([0.5, 0.5, 0.5], 3) == []
    with pytest.raises(ValueError):
        va.knn([0.5, 0.5, 0.5], 0)


@given(
    seed=st.integers(min_value=0, max_value=500),
    n=st.integers(min_value=1, max_value=80),
    k=st.integers(min_value=1, max_value=8),
    bits=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_knn_property_matches_scan(seed, n, k, bits):
    rng = np.random.default_rng(seed)
    points = rng.random((n, 4))
    va = VAFile(4, bits=bits)
    scan = LinearScanIndex(4)
    for i in range(n):
        va.insert(i, points[i])
        scan.insert(i, points[i])
    query = rng.random(4)
    mine = sorted(d for _, d in va.knn(query, k))
    theirs = sorted(d for _, d in scan.knn(query, k))
    assert mine == pytest.approx(theirs)
