"""Linear quadtree: Morton codes, range and k-NN queries."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index.base import LinearScanIndex
from repro.index.quadtree import LinearQuadtree, interleave_bits


def test_interleave_bits_known_values():
    # 2D, depth 2: (x=0b10, y=0b01) -> bits x1 y1 x0 y0 = 1 0 0 1
    assert interleave_bits((0b10, 0b01), 2) == 0b1001
    assert interleave_bits((0, 0), 3) == 0
    assert interleave_bits((0b111, 0b111), 3) == 0b111111


def test_morton_codes_group_nearby_points():
    tree = LinearQuadtree(2, depth=3)
    close_a = tree.code_of([0.1, 0.1])
    close_b = tree.code_of([0.12, 0.11])
    far = tree.code_of([0.9, 0.9])
    assert close_a == close_b
    assert far != close_a


def test_cell_space_guard():
    with pytest.raises(IndexError_):
        LinearQuadtree(8, depth=3)  # 2^24 cells
    with pytest.raises(IndexError_):
        LinearQuadtree(2, depth=0)


def test_points_outside_unit_cube_rejected():
    tree = LinearQuadtree(2, depth=2)
    with pytest.raises(IndexError_):
        tree.insert("x", [-0.1, 0.5])


def random_items(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return [(i, rng.random(dim)) for i in range(n)]


def test_range_query_matches_scan():
    items = random_items(300, 2, seed=1)
    tree = LinearQuadtree(2, depth=4)
    scan = LinearScanIndex(2)
    for object_id, vector in items:
        tree.insert(object_id, vector)
        scan.insert(object_id, vector)
    lo, hi = [0.25, 0.1], [0.75, 0.66]
    assert sorted(tree.range_query(lo, hi)) == sorted(scan.range_query(lo, hi))


def test_knn_matches_scan():
    items = random_items(200, 2, seed=2)
    tree = LinearQuadtree(2, depth=3)
    scan = LinearScanIndex(2)
    for object_id, vector in items:
        tree.insert(object_id, vector)
        scan.insert(object_id, vector)
    for query in ([0.5, 0.5], [0.02, 0.02], [0.98, 0.5]):
        mine = sorted(d for _, d in tree.knn(query, 6))
        theirs = sorted(d for _, d in scan.knn(query, 6))
        assert mine == pytest.approx(theirs)


def test_len_and_empty_knn():
    tree = LinearQuadtree(2, depth=2)
    assert len(tree) == 0
    assert tree.knn([0.5, 0.5], 3) == []
    tree.insert("a", [0.5, 0.5])
    assert len(tree) == 1
