"""Differential conformance: every index's stream == batch == scan.

The contract the whole PR rests on: for any corpus (duplicates, tiny
dimensions, degenerate coordinates included), every index kind's
``knn_stream`` prefix, its batch ``knn``, and the linear-scan oracle
agree *exactly* — same ids in the same canonical ``(distance, str(id))``
order, bit-identical distances — and a stream is resumable: popping
``j`` then ``j`` more equals popping ``2j`` at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index import (
    INDEX_KINDS,
    LinearScanIndex,
    build_knn_index,
)


@st.composite
def corpora(draw):
    """Small corpora rigged for collisions: coordinates off a 4-point
    grid, so duplicate vectors and distance ties are common."""
    dim = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=1, max_value=64))
    cells = draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    matrix = rng.integers(0, cells, size=(n, dim)) / cells
    query = rng.integers(0, cells, size=dim) / cells
    ids = [f"obj{i}" for i in range(n)]
    return ids, matrix.astype(np.float64), np.asarray(query, dtype=np.float64)


def scan_oracle(ids, matrix, query, k):
    return LinearScanIndex.bulk_load(ids, matrix).knn(query, k)


@pytest.mark.parametrize("kind", INDEX_KINDS)
@given(corpus=corpora(), k=st.integers(min_value=1, max_value=70))
@settings(max_examples=60, deadline=None)
def test_batch_knn_matches_scan_oracle(kind, corpus, k):
    ids, matrix, query = corpus
    index = build_knn_index(kind, ids, matrix, max_entries=4)
    assert index.knn(query, k) == scan_oracle(ids, matrix, query, k)


@pytest.mark.parametrize("kind", INDEX_KINDS)
@given(corpus=corpora())
@settings(max_examples=60, deadline=None)
def test_stream_prefix_matches_batch(kind, corpus):
    ids, matrix, query = corpus
    index = build_knn_index(kind, ids, matrix, max_entries=4)
    full = index.knn(query, len(ids))
    assert list(index.knn_stream(query)) == full


@pytest.mark.parametrize("kind", INDEX_KINDS)
@given(corpus=corpora(), j=st.integers(min_value=1, max_value=40))
@settings(max_examples=60, deadline=None)
def test_stream_is_resumable(kind, corpus, j):
    ids, matrix, query = corpus
    index = build_knn_index(kind, ids, matrix, max_entries=4)
    split = index.knn_stream(query)
    two_pulls = split.next_batch(j) + split.next_batch(j)
    assert two_pulls == index.knn_stream(query).next_batch(2 * j)


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_stream_exhaustion(kind):
    rng = np.random.default_rng(3)
    ids = [f"obj{i}" for i in range(20)]
    matrix = rng.random((20, 3))
    index = build_knn_index(kind, ids, matrix, max_entries=4)
    stream = index.knn_stream(rng.random(3))
    assert len(stream.next_batch(100)) == 20
    assert stream.next() is None
    assert stream.next_batch(5) == []
    with pytest.raises(ValueError):
        stream.next_batch(-1)


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_duplicate_vectors_break_ties_by_id(kind):
    # Five copies of the same point: order must be str(id) order.
    ids = ["e", "c", "a", "d", "b"]
    matrix = np.zeros((5, 2))
    index = build_knn_index(kind, ids, matrix, max_entries=4)
    assert [obj for obj, _ in index.knn(np.zeros(2), 5)] == [
        "a", "b", "c", "d", "e"
    ]
