"""The shared k-NN harness and the dimensionality-curse setup of E13."""

import numpy as np

from repro.index.base import LinearScanIndex
from repro.index.knn import (
    build_default_indexes,
    run_knn_batch,
    verify_against_scan,
)


def items_and_queries(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return [(i, rng.random(dim)) for i in range(n)], rng.random((5, dim))


def test_build_includes_scan_and_rtree_always():
    items, _ = items_and_queries(100, 6)
    indexes = build_default_indexes(items, 6)
    assert "linear-scan" in indexes
    assert "rtree" in indexes


def test_grid_and_quadtree_drop_out_at_high_dimension():
    items, _ = items_and_queries(50, 16)
    indexes = build_default_indexes(items, 16)
    assert "gridfile" not in indexes  # 4^16 cells
    assert "quadtree" not in indexes  # 2^48 cells


def test_all_indexes_agree_with_scan():
    items, queries = items_and_queries(300, 3, seed=1)
    indexes = build_default_indexes(items, 3)
    reference = run_knn_batch(indexes["linear-scan"], "scan", queries, 5)
    for name, index in indexes.items():
        run = run_knn_batch(index, name, queries, 5)
        assert verify_against_scan(run, reference), name


def test_run_collects_counters():
    items, queries = items_and_queries(200, 2, seed=2)
    indexes = build_default_indexes(items, 2)
    run = run_knn_batch(indexes["rtree"], "rtree", queries, 5)
    assert run.node_accesses > 0
    assert run.distance_evaluations > 0
    assert len(run.results) == len(queries)


def test_verify_detects_mismatch():
    items, queries = items_and_queries(50, 2, seed=3)
    scan = LinearScanIndex(2)
    for object_id, vector in items:
        scan.insert(object_id, vector)
    reference = run_knn_batch(scan, "scan", queries, 5)
    tampered = run_knn_batch(scan, "scan", queries, 4)  # wrong k
    assert not verify_against_scan(tampered, reference)


def test_rtree_advantage_shrinks_with_dimension():
    """The curse: the R-tree's share of distance evaluations grows with
    dimensionality (section 2.1 / [Ot92])."""
    shares = {}
    for dim in (2, 12):
        items, queries = items_and_queries(800, dim, seed=dim)
        indexes = build_default_indexes(items, dim)
        scan_run = run_knn_batch(indexes["linear-scan"], "scan", queries, 5)
        tree_run = run_knn_batch(indexes["rtree"], "rtree", queries, 5)
        shares[dim] = tree_run.distance_evaluations / scan_run.distance_evaluations
    assert shares[12] > shares[2]
