"""Grid file: correctness and the exponential directory."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index.base import LinearScanIndex
from repro.index.gridfile import GridFile


def random_items(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return [(i, rng.random(dim)) for i in range(n)]


def test_directory_size_is_exponential_in_dimension():
    assert GridFile(2, cells_per_dim=8).directory_size == 64
    assert GridFile(4, cells_per_dim=8).directory_size == 4096
    assert GridFile(6, cells_per_dim=8).directory_size == 8**6


def test_huge_directory_refused():
    """The dimensionality curse as a hard error."""
    with pytest.raises(IndexError_):
        GridFile(12, cells_per_dim=8)


def test_points_outside_unit_cube_rejected():
    grid = GridFile(2, cells_per_dim=4)
    with pytest.raises(IndexError_):
        grid.insert("x", [1.5, 0.2])


def test_range_query_matches_scan():
    items = random_items(300, 3, seed=1)
    grid = GridFile(3, cells_per_dim=4)
    scan = LinearScanIndex(3)
    for object_id, vector in items:
        grid.insert(object_id, vector)
        scan.insert(object_id, vector)
    lo, hi = [0.1, 0.2, 0.0], [0.5, 0.9, 0.7]
    assert sorted(grid.range_query(lo, hi)) == sorted(scan.range_query(lo, hi))


def test_knn_matches_scan():
    items = random_items(250, 2, seed=2)
    grid = GridFile(2, cells_per_dim=8)
    scan = LinearScanIndex(2)
    for object_id, vector in items:
        grid.insert(object_id, vector)
        scan.insert(object_id, vector)
    for query in ([0.5, 0.5], [0.05, 0.95], [0.99, 0.01]):
        mine = sorted(d for _, d in grid.knn(query, 7))
        theirs = sorted(d for _, d in scan.knn(query, 7))
        assert mine == pytest.approx(theirs)


def test_knn_touches_fewer_points_than_scan_on_local_queries():
    items = random_items(1000, 2, seed=3)
    grid = GridFile(2, cells_per_dim=16)
    for object_id, vector in items:
        grid.insert(object_id, vector)
    grid.stats.reset()
    grid.knn([0.5, 0.5], 3)
    assert grid.stats.distance_evaluations < 400


def test_occupied_cells_and_len():
    grid = GridFile(2, cells_per_dim=4)
    grid.insert("a", [0.1, 0.1])
    grid.insert("b", [0.11, 0.12])  # same cell
    grid.insert("c", [0.9, 0.9])
    assert len(grid) == 3
    assert grid.occupied_cells() == 2


def test_empty_grid_knn():
    assert GridFile(2).knn([0.5, 0.5], 3) == []
    with pytest.raises(ValueError):
        GridFile(2).knn([0.5, 0.5], 0)
