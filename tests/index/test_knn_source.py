"""KnnSource / KnnSubsystem: accounting, parity, and algorithm conformance."""

import logging

import numpy as np
import pytest

from repro.core.threshold import threshold_top_k
from repro.errors import IndexError_, UnknownObjectError
from repro.index import (
    INDEX_KINDS,
    KnnSource,
    KnnSubsystem,
    build_default_indexes,
    build_knn_index,
    euclidean_distances,
)
from repro.scoring import tnorms


def corpus(n=120, dim=4, seed=7):
    rng = np.random.default_rng(seed)
    return [f"obj{i}" for i in range(n)], rng.random((n, dim))


def make_source(kind, ids, matrix, target, **kwargs):
    index = build_knn_index(kind, ids, matrix, max_entries=4)
    return KnnSource(index, target, name=f"near-{kind}", kind=kind, **kwargs)


def test_parameters_validated():
    ids, matrix = corpus()
    index = build_knn_index("scan", ids, matrix)
    with pytest.raises(ValueError):
        KnnSource(index, matrix[0], scale=0.0)
    with pytest.raises(ValueError):
        KnnSource(index, matrix[0], batch=0)
    with pytest.raises(IndexError_):
        build_knn_index("btree", ids, matrix)


def test_sorted_access_charges_per_delivered_item():
    ids, matrix = corpus()
    source = make_source("vafile", ids, matrix, np.full(4, 0.5), batch=8)
    cursor = source.cursor()
    assert cursor.next_batch(10) and source.counter.sorted_accesses == 10
    assert cursor.peek_grade() is not None
    assert source.counter.sorted_accesses == 10  # peeks stay free
    assert source.counter.random_accesses == 0


def test_random_access_charges_counter_and_index():
    ids, matrix = corpus()
    source = make_source("scan", ids, matrix, np.full(4, 0.5))
    _, evals_before = source._index.stats.snapshot()
    grade = source.random_access("obj3")
    _, evals_after = source._index.stats.snapshot()
    expected = np.exp(-euclidean_distances(matrix[3], np.full(4, 0.5)))
    assert grade == pytest.approx(float(expected), abs=0)
    assert source.counter.random_accesses == 1
    assert evals_after == evals_before + 1
    with pytest.raises(UnknownObjectError):
        source.random_access("nope")


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_columnar_matches_item_path(kind):
    ids, matrix = corpus()
    target = np.full(4, 0.25)
    items = make_source(kind, ids, matrix, target).cursor().next_batch(25)
    col_ids, col_grades = (
        make_source(kind, ids, matrix, target)
        .cursor()
        .next_batch_columns(25)
    )
    assert col_ids == [item.object_id for item in items]
    assert col_grades.tolist() == [item.grade for item in items]


def test_grades_are_nonincreasing_and_sized():
    ids, matrix = corpus()
    source = make_source("rtree", ids, matrix, np.zeros(4))
    assert len(source) == len(ids)
    grades = [item.grade for item in source.cursor().next_batch(len(ids))]
    assert len(grades) == len(ids)
    assert all(a >= b for a, b in zip(grades, grades[1:]))


def naive_min_top_k(ids, matrix, targets, k):
    grades = np.minimum.reduce(
        [np.exp(-euclidean_distances(matrix, t)) for t in targets]
    )
    order = np.lexsort((np.asarray([str(i) for i in ids]), -grades))
    return [(ids[row], float(grades[row])) for row in order[:k]]


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_ta_over_knn_sources_matches_naive_oracle(kind):
    ids, matrix = corpus(n=200)
    rng = np.random.default_rng(11)
    targets = rng.random((2, 4))
    sources = [
        make_source(kind, ids, matrix, target, batch=16) for target in targets
    ]
    result = threshold_top_k(sources, tnorms.MIN, 7)
    assert [
        (item.object_id, item.grade) for item in result.answers
    ] == naive_min_top_k(ids, matrix, targets, 7)


def test_ta_answers_and_costs_identical_across_kinds():
    ids, matrix = corpus(n=200)
    rng = np.random.default_rng(13)
    targets = rng.random((2, 4))
    baseline = None
    for kind in INDEX_KINDS:
        sources = [
            make_source(kind, ids, matrix, target, batch=16)
            for target in targets
        ]
        result = threshold_top_k(sources, tnorms.MIN, 7)
        key = (
            [(item.object_id, item.grade) for item in result.answers],
            result.cost.sorted_access_cost,
            result.cost.random_access_cost,
            result.sorted_depth,
        )
        baseline = key if baseline is None else baseline
        assert key == baseline, f"{kind} differs from {INDEX_KINDS[0]}"


def test_index_stats_hook_shape():
    ids, matrix = corpus()
    source = make_source("vafile", ids, matrix, np.zeros(4), batch=8)
    source.cursor().next_batch(5)
    info = source.index_stats()
    assert info["index"] == "vafile" and info["n"] == len(ids)
    assert info["node_accesses"] >= len(ids)  # the scan phase saw all codes
    assert 0 < info["distance_evals"] < len(ids)  # but refined only a few


def test_subsystem_binds_deterministic_string_targets():
    ids, matrix = corpus()
    subsystem = KnnSubsystem("knn", ids, matrix, index="vafile")
    assert subsystem.attributes() == frozenset({"Near"})
    once = subsystem.resolve_target("sunset")
    again = subsystem.resolve_target("sunset")
    assert np.array_equal(once, again)
    assert not np.array_equal(once, subsystem.resolve_target("sunrise"))
    from repro.core.query import Atomic

    source = subsystem.bind(Atomic("Near", "sunset"))
    assert source.name == "Near=sunset"
    assert source.cursor().next() is not None


def test_build_default_indexes_logs_skipped_curse_victims(caplog):
    # d=14: the grid file's directory would need 4^14 cells — it must be
    # skipped with a logged note, never with a silent bare except.
    rng = np.random.default_rng(3)
    items = [(i, rng.random(14)) for i in range(10)]
    with caplog.at_level(logging.INFO, logger="repro.index.knn"):
        indexes = build_default_indexes(items, 14)
    assert "gridfile" not in indexes and "quadtree" not in indexes
    notes = [record.message for record in caplog.records]
    assert any("skipping gridfile at dimension 14" in note for note in notes)
    assert any("skipping quadtree at dimension 14" in note for note in notes)


def test_build_default_indexes_propagates_unexpected_errors(monkeypatch):
    import repro.index.knn as knn_module

    class Boom:
        def __init__(self, *args, **kwargs):
            raise RuntimeError("not a curse, a bug")

    monkeypatch.setattr(knn_module, "GridFile", Boom)
    rng = np.random.default_rng(3)
    items = [(i, rng.random(2)) for i in range(5)]
    with pytest.raises(RuntimeError):
        build_default_indexes(items, 2)
