"""Invalidation: a mutated source is never answered from the cache.

Three invalidation paths, each ending in a verified-fresh re-answer:

* the explicit hooks — ``engine.invalidate()`` wholesale and per-atom
  (the contract after mutating a subsystem's data);
* reconfiguration — ``configure_storage`` / ``configure_resilience``
  rebuild every binding, so entries pinned to the old bindings die;
* the fingerprint path — a memmap entry revalidates against the
  on-disk manifest at probe time, so a rebuilt directory reads as
  stale even when the engine was never told.
"""

import os

from repro.core.planner import Strategy
from repro.core.query import Atomic
from repro.storage.memmap import MANIFEST_NAME

from tests.cache.helpers import answer_pairs, conjunction, engine_from_table
from tests.cache.test_cache_matrix import M, make_table

QUERY = conjunction(M)


def filled_engine(**kwargs):
    engine = engine_from_table(make_table(), M, **kwargs)
    cache = engine.configure_cache()
    fill = engine.top_k(QUERY, k=10, prefer=Strategy.NRA)
    return engine, cache, fill


def test_wholesale_invalidate_forces_a_fresh_run():
    engine, cache, fill = filled_engine()
    assert (engine.top_k(QUERY, k=10, prefer=Strategy.NRA)
            .extras["cache"]["tier"]) == "exact"
    engine.invalidate()
    assert cache.stats()["entries"] == 0
    assert cache.stats()["invalidations"] == 1
    refill = engine.top_k(QUERY, k=10, prefer=Strategy.NRA)
    assert "cache" not in refill.extras
    assert answer_pairs(refill) == answer_pairs(fill)


def test_per_atom_invalidate_only_drops_touching_entries():
    engine, cache, _ = filled_engine()
    other = Atomic("c1", "x")  # single-atom query: a second entry
    engine.top_k(other, k=5, prefer=Strategy.NRA)
    assert cache.stats()["entries"] == 2

    engine.invalidate(Atomic("c0", "x"))
    # The conjunction touches c0 and dies; the c1-only entry survives.
    assert cache.stats()["entries"] == 1
    assert (engine.top_k(other, k=5, prefer=Strategy.NRA)
            .extras["cache"]["tier"]) == "exact"
    assert "cache" not in engine.top_k(QUERY, k=10, prefer=Strategy.NRA).extras


def test_storage_reconfiguration_clears_the_cache():
    engine, cache, fill = filled_engine()
    engine.configure_storage("array", shards=2)
    assert cache.stats()["entries"] == 0
    refill = engine.top_k(QUERY, k=10, prefer=Strategy.NRA)
    assert "cache" not in refill.extras
    assert answer_pairs(refill) == answer_pairs(fill)


def test_memmap_manifest_change_reads_as_stale(tmp_path):
    engine, cache, fill = filled_engine(
        backend="memmap", directory=str(tmp_path)
    )
    assert (engine.top_k(QUERY, k=10, prefer=Strategy.NRA)
            .extras["cache"]["tier"]) == "exact"

    # Rebuild-in-place: same bindings, but the on-disk manifest moved.
    # The fingerprint recorded at fill time no longer matches, so the
    # probe evicts instead of serving.
    for name in os.listdir(tmp_path):
        manifest = os.path.join(str(tmp_path), name, MANIFEST_NAME)
        if os.path.exists(manifest):
            stamp = os.stat(manifest).st_mtime_ns + 10_000_000
            os.utime(manifest, ns=(stamp, stamp))

    result, status = engine.cache_probe(QUERY, 10, prefer=Strategy.NRA)
    assert result is None and status == "stale"
    assert cache.stats()["stale"] >= 1
    assert cache.stats()["entries"] == 0

    refill = engine.top_k(QUERY, k=10, prefer=Strategy.NRA)
    assert "cache" not in refill.extras
    assert answer_pairs(refill) == answer_pairs(fill)


def test_engine_close_drops_entries():
    engine, cache, _ = filled_engine()
    engine.close()
    assert cache.stats()["entries"] == 0
