"""Unit coverage of the cache internals: keys, entries, LRU, races.

The conformance suites prove end-to-end behavior; these tests pin the
normalization and bookkeeping rules directly so a regression names the
broken rule instead of a downstream mismatch.
"""

import hashlib
import random

import pytest

from repro.cache import QueryCache, key_digest, plan_key
from repro.core.planner import Strategy
from repro.core.query import Atomic, Scored, Weighted
from repro.scoring import means, tnorms
from repro.scoring.base import FunctionScoring
from repro.scoring.zadeh import ZADEH

from tests.cache.helpers import conjunction, engine_from_table

A = Atomic("a", "x")
B = Atomic("b", "x")


# ----------------------------------------------------------------------
# Key normalization
# ----------------------------------------------------------------------
def test_symmetric_conjunction_commutes():
    assert plan_key(A & B, ZADEH) == plan_key(B & A, ZADEH)
    assert plan_key(A | B, ZADEH) == plan_key(B | A, ZADEH)


def test_conjunction_and_disjunction_never_collide():
    assert plan_key(A & B, ZADEH) != plan_key(A | B, ZADEH)


def test_symmetric_scored_rule_commutes():
    assert plan_key(Scored(means.MEAN, (A, B)), ZADEH) == plan_key(
        Scored(means.MEAN, (B, A)), ZADEH
    )
    assert plan_key(Scored(means.MEAN, (A, B)), ZADEH) != plan_key(
        Scored(tnorms.PRODUCT, (A, B)), ZADEH
    )


def test_weighted_children_are_positional():
    # Fagin–Wimmers weights attach to positions: swapping children
    # changes the query, so the keys must differ.
    forward = Weighted((A, B), (0.7, 0.3))
    swapped = Weighted((B, A), (0.7, 0.3))
    assert plan_key(forward, ZADEH) != plan_key(swapped, ZADEH)
    assert plan_key(forward, ZADEH) != plan_key(
        Weighted((A, B), (0.3, 0.7)), ZADEH
    )


def test_prefer_is_part_of_the_key():
    assert plan_key(A & B, ZADEH, Strategy.NRA) != plan_key(A & B, ZADEH)
    assert plan_key(A & B, ZADEH, Strategy.NRA) != plan_key(
        A & B, ZADEH, Strategy.THRESHOLD
    )


def test_function_scoring_rules_never_alias():
    # Two user lambdas with the same display name must not share an
    # entry — the cache cannot prove them equal, so it must not try.
    first = FunctionScoring(lambda grades: min(grades), name="custom")
    second = FunctionScoring(lambda grades: max(grades), name="custom")
    key = plan_key(Scored(first, (A, B)), ZADEH)
    assert key != plan_key(Scored(second, (A, B)), ZADEH)
    assert key == plan_key(Scored(first, (B, A)), ZADEH)


def test_digest_is_hash_seed_independent():
    key = plan_key(A & B, ZADEH)
    # sha1 over repr — byte-stable across processes and PYTHONHASHSEED,
    # unlike hash(), so digests are safe inside golden traces.
    expected = hashlib.sha1(repr(key).encode("utf-8")).hexdigest()[:12]
    assert key_digest(key) == expected
    assert key_digest(key) == key_digest(plan_key(B & A, ZADEH))


# ----------------------------------------------------------------------
# Entry bookkeeping via the engine
# ----------------------------------------------------------------------
def small_engine(max_entries=256):
    rng = random.Random(3)
    table = {f"o{i:02d}": [rng.random(), rng.random()] for i in range(30)}
    engine = engine_from_table(table, 2)
    return engine, engine.configure_cache(max_entries=max_entries)


def test_tau_is_the_kth_grade():
    engine, cache = small_engine()
    result = engine.top_k(conjunction(2), k=7)
    served = engine.top_k(conjunction(2), k=7)
    answers = list(result.answers)
    assert served.extras["cache"]["tau"] == answers[-1].grade


def test_lru_eviction_drops_the_oldest():
    engine, cache = small_engine(max_entries=2)
    first = Atomic("c0", "x")
    second = Atomic("c1", "x")
    engine.top_k(first, k=3)
    engine.top_k(second, k=3)
    engine.top_k(first, k=3)  # refresh: first is now the recent one
    engine.top_k(conjunction(2), k=3)  # third entry: evicts second
    assert cache.stats()["evictions"] == 1
    assert engine.top_k(first, k=3).extras["cache"]["tier"] == "exact"
    assert "cache" not in engine.top_k(second, k=3).extras


def test_store_rejects_inexact_grades():
    engine, cache = small_engine()
    result = engine.top_k(conjunction(2), k=5)
    result.grades_exact = False
    key = plan_key(conjunction(2), ZADEH)
    atoms = conjunction(2).atoms()
    sources = engine.bind_all(conjunction(2))
    assert not cache.store(key, atoms, sources, result)


def test_deepest_k_wins_and_shallower_store_counts_a_race():
    engine, cache = small_engine()
    query = conjunction(2)
    deep = engine.top_k(query, k=10)
    key = plan_key(query, ZADEH)
    atoms = query.atoms()
    sources = engine.bind_all(query)

    shallow = engine.top_k(query, k=4, cache=False)
    assert not cache.store(key, atoms, sources, shallow)
    assert cache.stats()["fill_races"] == 1
    # The deep entry survived: k=10 is still an exact hit.
    again = engine.top_k(query, k=10)
    assert again.extras["cache"]["tier"] == "exact"
    assert [(i.object_id, i.grade) for i in again.answers] == [
        (i.object_id, i.grade) for i in deep.answers
    ]


def test_max_entries_must_be_positive():
    with pytest.raises(ValueError):
        QueryCache(max_entries=0)


def test_per_query_cache_override():
    engine, cache = small_engine()
    query = conjunction(2)
    engine.top_k(query, k=5)
    # cache=False bypasses the session cache entirely for one call.
    bypassed = engine.top_k(query, k=5, cache=False)
    assert "cache" not in bypassed.extras
    assert cache.stats()["hits"] == 0
    # An explicit private cache substitutes the session one: it fills
    # independently and the session cache sees none of the traffic.
    private = QueryCache()
    engine.top_k(query, k=5, cache=private)
    assert private.stats() == {**private.stats(), "fills": 1, "misses": 1}
    assert cache.stats()["hits"] == 0
    served = engine.top_k(query, k=5, cache=private)
    assert served.extras["cache"]["tier"] == "exact"


def test_configure_cache_accepts_a_cache_positionally():
    # An empty QueryCache has len() 0; passed as the first positional
    # argument it must install, not read as enabled=False and silently
    # turn caching off.
    engine, _ = small_engine()
    shared = QueryCache(max_entries=8)
    assert engine.configure_cache(shared) is shared
    assert engine.cache is shared
    query = conjunction(2)
    engine.top_k(query, k=5)
    assert shared.stats()["fills"] == 1
    assert engine.top_k(query, k=5).extras["cache"]["tier"] == "exact"
