"""Differential cache-conformance suite: reuse is never observable.

The tentpole contract, locked down tier by tier against cold runs over
byte-identical data:

* a cache-enabled **miss** runs — answers, costs, traces — exactly like
  a cold query (the cache is invisible until it can prove a reuse);
* an **exact hit** replays the fill byte-identically (answers, cost
  report, algorithm, sorted depth) while the trace shows a single
  ``cache`` event and *zero* access events;
* a **prefix hit** serves a provably correct top-k: its grade multiset
  equals the oracle's (object choice among boundary ties follows the
  cached run — the freedom the paper grants), at an all-zero cost
  report;
* a **warm start** resumes NRA at deeper k with answers and merged
  cost byte-identical to a cold deep run, and the concatenation of the
  fill's and the resumption's access streams equals the cold run's
  access stream event for event.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import grade_everything
from repro.core.planner import Strategy
from repro.core.query import Scored
from repro.core.sources import sources_from_columns
from repro.observability import QueryTracer
from repro.scoring import means, tnorms
from tests.cache.helpers import (
    access_events,
    answer_pairs,
    assert_byte_identical,
    atom,
    conjunction,
    engine_from_table,
)
from tests.strategies import graded_databases, pick_k


def pick_query(m, index):
    """Conjunction (min) or an explicit Scored rule over all columns."""
    if index == 0:
        return conjunction(m), tnorms.MIN
    atoms = [atom(column) for column in range(m)]
    rule = (means.MEAN, tnorms.PRODUCT)[index - 1]
    return Scored(rule, atoms), rule


def oracle_top(table, rule, k):
    sources = sources_from_columns(table, backend="list")
    return grade_everything(sources, rule).top(min(k, len(table)))


@settings(deadline=None, max_examples=50)
@given(
    data=graded_databases(min_m=1, max_m=3, max_n=16),
    query_index=st.integers(0, 2),
    k_selector=st.integers(0, 2),
)
def test_cache_enabled_miss_is_byte_identical_to_cold(
    data, query_index, k_selector
):
    table, m = data
    query, _ = pick_query(m, query_index)
    k = pick_k(table, k_selector)

    cold_engine = engine_from_table(table, m)
    cold_tracer = QueryTracer()
    cold = cold_engine.top_k(query, k=k, tracer=cold_tracer)

    cached_engine = engine_from_table(table, m)
    cache = cached_engine.configure_cache()
    fill_tracer = QueryTracer()
    fill = cached_engine.top_k(query, k=k, tracer=fill_tracer)

    assert_byte_identical("fill vs cold", cold, fill)
    assert "cache" not in fill.extras
    assert fill_tracer.to_json() == cold_tracer.to_json()
    stats = cache.stats()
    assert stats["hits"] == 0 and stats["misses"] == 1


@settings(deadline=None, max_examples=50)
@given(
    data=graded_databases(min_m=1, max_m=3, max_n=16),
    query_index=st.integers(0, 2),
    k_selector=st.integers(0, 2),
)
def test_exact_hit_replays_the_fill_at_zero_access_cost(
    data, query_index, k_selector
):
    table, m = data
    query, _ = pick_query(m, query_index)
    k = pick_k(table, k_selector)

    engine = engine_from_table(table, m)
    cache = engine.configure_cache()
    fill = engine.top_k(query, k=k)

    hit_tracer = QueryTracer()
    hit = engine.top_k(query, k=k, tracer=hit_tracer)

    assert_byte_identical("hit vs fill", fill, hit)
    assert hit.extras["cache"]["tier"] == "exact"
    # The whole trace of a hit is the one cache event: no plan, no
    # phases, and — the point — no repository accesses at all.
    assert access_events(hit_tracer) == []
    [event] = hit_tracer.events
    assert event["type"] == "event" and event["name"] == "cache"
    assert cache.stats()["hits"] == 1


@settings(deadline=None, max_examples=50)
@given(
    data=graded_databases(min_m=1, max_m=3, max_n=16),
    query_index=st.integers(0, 2),
    smaller=st.integers(0, 10),
)
def test_prefix_hit_is_an_exact_top_k_at_zero_cost(
    data, query_index, smaller
):
    table, m = data
    query, rule = pick_query(m, query_index)
    n = len(table)
    fill_k = n + 1  # deepest entry: every smaller k is a prefix probe
    engine = engine_from_table(table, m)
    engine.configure_cache()
    engine.top_k(query, k=fill_k)

    k = 1 + smaller % n
    served = engine.top_k(query, k=k)
    if k == min(fill_k, n):
        assert served.extras["cache"]["tier"] == "exact"
        return
    assert served.extras["cache"]["tier"] == "prefix"
    assert served.grades_exact
    # Correctness in the paper's sense: the served grade multiset is
    # the oracle's, exactly (object identity among boundary ties is
    # the cached run's choice, as it is any single algorithm's).
    assert served.answers.same_grade_multiset(oracle_top(table, rule, k))
    assert served.cost.sorted_access_cost == 0
    assert served.cost.random_access_cost == 0
    # The certificate: every served grade clears the recorded tau.
    tau = served.extras["cache"]["tau"]
    assert all(grade >= tau for _, grade in answer_pairs(served))


@settings(deadline=None, max_examples=40)
@given(
    data=graded_databases(min_m=2, max_m=3, max_n=16),
    query_index=st.integers(0, 2),
    split=st.integers(1, 8),
)
def test_warm_start_is_byte_identical_to_a_cold_deep_run(
    data, query_index, split
):
    table, m = data
    query, _ = pick_query(m, query_index)
    n = len(table)
    shallow = 1 + split % max(n - 1, 1)
    deep = min(shallow + 1 + split % 5, n)
    if deep <= shallow:
        return

    cold_engine = engine_from_table(table, m)
    cold_tracer = QueryTracer()
    cold = cold_engine.top_k(
        query, k=deep, prefer=Strategy.NRA, tracer=cold_tracer
    )

    engine = engine_from_table(table, m)
    cache = engine.configure_cache()
    fill_tracer = QueryTracer()
    engine.top_k(query, k=shallow, prefer=Strategy.NRA, tracer=fill_tracer)

    warm_tracer = QueryTracer()
    warm = engine.top_k(
        query, k=deep, prefer=Strategy.NRA, tracer=warm_tracer
    )

    assert warm.extras["cache"]["tier"] == "warm"
    assert answer_pairs(warm) == answer_pairs(cold)
    assert warm.cost == cold.cost
    assert warm.sorted_depth == cold.sorted_depth
    # Fill accesses ++ marginal accesses == the cold run's stream, so
    # nothing was re-read and nothing was skipped.
    assert (
        access_events(fill_tracer) + access_events(warm_tracer)
        == access_events(cold_tracer)
    )
    assert cache.stats()["warm_hits"] == 1

    # And the refreshed entry now serves the deep k as an exact hit.
    again = engine.top_k(query, k=deep, prefer=Strategy.NRA)
    assert again.extras["cache"]["tier"] == "exact"
    assert_byte_identical("re-hit vs warm", warm, again)
