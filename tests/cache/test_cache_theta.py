"""θ-tier cache semantics: certified reuse, qualification, isolation.

The fourth tier's contract (see :mod:`repro.cache`): a clean θ-certified
fill is stored under an extended *same-k* key and replays for a later
request exactly when the recorded achieved ratio covers the requested
θ'; exact (θ = 1) entries serve any θ' through tiers 1/2; θ = 1.0 probes
never touch θ entries at all; θ entries carry no warm-start snapshots;
fingerprint invalidation covers them like every other entry; and
degraded / anytime / unprovable results are never cached.
"""

import random

from repro.cache import QueryCache, plan_key
from repro.core.cost import CostReport
from repro.core.graded import GradedSet
from repro.core.planner import Strategy
from repro.core.result import ApproximationCertificate, DegradedResult, TopKResult
from repro.scoring.zadeh import ZADEH
from tests.cache.helpers import answer_pairs, atom, conjunction, engine_from_table

N = 60
M = 2


def make_table(seed=11):
    rng = random.Random(seed)
    levels = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
    return {
        f"o{i:03d}": [rng.choice(levels) for _ in range(M)] for i in range(N)
    }


def cached_engine(table=None):
    engine = engine_from_table(table or make_table(), M)
    return engine, engine.configure_cache()


# ---------------------------------------------------------------- serving


def test_theta_repeat_replays_with_certificate():
    engine, cache = cached_engine()
    query = conjunction(M)
    fill = engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.5)
    assert fill.extras.get("cache") is None
    assert fill.approximation is not None

    served = engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.5)
    assert served.extras["cache"]["tier"] == "theta"
    assert answer_pairs(served) == answer_pairs(fill)
    assert served.cost == fill.cost  # full replay of the fill's tallies
    assert served.approximation is not None
    assert served.approximation.achieved == fill.approximation.achieved
    assert served.approximation.theta == 1.5
    assert cache.stats()["theta_hits"] == 1


def test_theta_entry_serves_only_when_achieved_qualifies():
    engine, cache = cached_engine()
    query = conjunction(M)
    fill = engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.5)
    achieved = fill.approximation.achieved

    # A looser request is covered by the recorded proof.
    looser = engine.top_k(query, 5, prefer=Strategy.NRA, theta=2.0)
    assert looser.extras["cache"]["tier"] == "theta"
    assert looser.approximation.theta == 2.0
    assert looser.approximation.achieved == achieved

    # A request tighter than the achieved ratio must NOT be served from
    # the entry: it re-executes and stores the tighter certificate.
    tight_theta = 1.0 + (achieved - 1.0) / 2 if achieved > 1.0 else None
    if tight_theta is not None and tight_theta > 1.0:
        tighter = engine.top_k(query, 5, prefer=Strategy.NRA, theta=tight_theta)
        assert tighter.extras.get("cache") is None
        assert tighter.approximation.achieved <= tight_theta + 1e-6
        # The tighter fill replaced the entry (tighter achieved wins).
        again = engine.top_k(query, 5, prefer=Strategy.NRA, theta=tight_theta)
        assert again.extras["cache"]["tier"] == "theta"


def test_exact_entries_serve_any_theta():
    engine, cache = cached_engine()
    query = conjunction(M)
    cold = engine.top_k(query, 10, prefer=Strategy.NRA)
    assert cold.extras.get("cache") is None

    exact = engine.top_k(query, 10, prefer=Strategy.NRA, theta=1.5)
    assert exact.extras["cache"]["tier"] == "exact"
    assert exact.approximation is None  # exact answers need no certificate
    assert answer_pairs(exact) == answer_pairs(cold)

    prefix = engine.top_k(query, 4, prefer=Strategy.NRA, theta=3.0)
    assert prefix.extras["cache"]["tier"] == "prefix"
    assert prefix.cost.database_access_cost == 0
    assert cache.stats()["theta_hits"] == 0


def test_theta_one_probe_never_touches_theta_entries():
    """Exact traffic is byte-identical to a cache without θ entries."""
    table = make_table()
    engine, cache = cached_engine(table)
    query = conjunction(M)
    engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.5)  # θ entry stored

    reference = engine_from_table(table, M).top_k(query, 5, prefer=Strategy.NRA)
    exact = engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.0)
    assert exact.extras.get("cache") is None  # cold, not served from θ
    assert answer_pairs(exact) == answer_pairs(reference)
    assert exact.cost == reference.cost
    assert exact.approximation is None


def test_theta_entries_are_same_k_only():
    engine, cache = cached_engine()
    query = conjunction(M)
    engine.top_k(query, 8, prefer=Strategy.NRA, theta=1.5)

    smaller = engine.top_k(query, 3, prefer=Strategy.NRA, theta=1.5)
    assert smaller.extras.get("cache") is None  # a prefix proves nothing
    deeper = engine.top_k(query, 15, prefer=Strategy.NRA, theta=1.5)
    assert deeper.extras.get("cache") is None or (
        deeper.extras["cache"]["tier"] != "theta"
    )


def test_theta_entries_carry_no_snapshot():
    engine, cache = cached_engine()
    query = conjunction(M)
    engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.5)
    theta_entries = [
        entry
        for key, entry in cache._entries.items()
        if entry.certificate is not None
    ]
    assert theta_entries, "the θ fill must have stored a θ entry"
    for entry in theta_entries:
        assert entry.snapshot is None


# ---------------------------------------------------------------- invalidation


def test_invalidation_drops_theta_entries():
    engine, cache = cached_engine()
    query = conjunction(M)
    engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.5)
    assert engine.top_k(
        query, 5, prefer=Strategy.NRA, theta=1.5
    ).extras["cache"]["tier"] == "theta"

    engine.invalidate(atom(0))
    refilled = engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.5)
    assert refilled.extras.get("cache") is None  # entry gone, ran cold


def test_storage_reconfiguration_stales_theta_entries():
    engine, cache = cached_engine()
    query = conjunction(M)
    engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.5)
    engine.configure_storage("array")
    refilled = engine.top_k(query, 5, prefer=Strategy.NRA, theta=1.5)
    assert refilled.extras.get("cache") is None
    assert refilled.approximation is not None


# ---------------------------------------------------------------- store gating


def _result(certificate=None, degraded=None, grades_exact=True):
    return TopKResult(
        answers=GradedSet({"a": 0.9, "b": 0.5}),
        cost=CostReport(),
        algorithm="nra",
        grades_exact=grades_exact,
        degraded=degraded,
        approximation=certificate,
    )


def _key():
    return plan_key(conjunction(M), ZADEH)


def test_store_refuses_anytime_and_degraded_and_unprovable():
    cache = QueryCache()
    anytime = ApproximationCertificate.build(
        theta=1.5, kth_grade=0.5, bound=0.8, anytime=True
    )
    assert not cache.store(_key(), (), (), _result(certificate=anytime))
    degraded = DegradedResult(fallback="partial-bounds", complete=False)
    assert not cache.store(_key(), (), (), _result(degraded=degraded))
    unprovable = ApproximationCertificate.build(
        theta=1.5, kth_grade=0.0, bound=0.8
    )
    assert unprovable.achieved == float("inf")
    assert not cache.store(_key(), (), (), _result(certificate=unprovable))
    assert len(cache) == 0


def test_store_keeps_tighter_achieved_on_race():
    cache = QueryCache()
    loose = ApproximationCertificate.build(theta=2.0, kth_grade=0.5, bound=0.9)
    tight = ApproximationCertificate.build(theta=2.0, kth_grade=0.5, bound=0.6)
    assert cache.store(_key(), (), (), _result(certificate=loose))
    assert cache.store(_key(), (), (), _result(certificate=tight))
    assert not cache.store(_key(), (), (), _result(certificate=loose))
    assert cache.stats()["fill_races"] == 1
    (entry,) = cache._entries.values()
    assert entry.certificate.achieved == tight.achieved


# ---------------------------------------------------------------- warm start


def test_deeper_theta_request_warm_starts_and_recertifies():
    """The warm-start audit: a θ > 1 resume from an exact fill evaluates
    its stop test and certificate fresh from the live bounds — it never
    inherits anything stale from the (exact, certificate-free) fill."""
    table = make_table()
    engine, cache = cached_engine(table)
    query = conjunction(M)
    fill = engine.top_k(query, 5, prefer=Strategy.NRA)  # exact, snapshotted
    assert fill.approximation is None

    resumed = engine.top_k(query, 15, prefer=Strategy.NRA, theta=1.5)
    assert resumed.extras["cache"]["tier"] == "warm"
    certificate = resumed.approximation
    assert certificate is not None
    assert certificate.theta == 1.5
    assert not certificate.anytime

    # Certificate soundness against the true grades (Zadeh min rule).
    truth = {obj: min(row) for obj, row in table.items()}
    returned = {item.object_id for item in resumed.answers}
    excluded_best = max(
        (grade for obj, grade in truth.items() if obj not in returned),
        default=0.0,
    )
    if certificate.kth_grade > 0:
        assert certificate.achieved <= 1.5 + 1e-6
    if certificate.achieved != float("inf"):
        for item in resumed.answers:
            assert (
                certificate.achieved * truth[item.object_id]
                >= excluded_best - 1e-9
            )

    # The θ resume stored a θ entry at k=15; a repeat replays it while
    # the exact k=5 entry still serves exact traffic untouched.
    repeat = engine.top_k(query, 15, prefer=Strategy.NRA, theta=1.5)
    assert repeat.extras["cache"]["tier"] == "theta"
    exact_again = engine.top_k(query, 5, prefer=Strategy.NRA)
    assert exact_again.extras["cache"]["tier"] == "exact"
    assert answer_pairs(exact_again) == answer_pairs(fill)
