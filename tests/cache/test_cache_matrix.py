"""Cache tiers across kernels x storage backends x worker counts.

The cache key deliberately excludes the physical configuration — the
storage/kernel conformance suites prove answers byte-identical across
all of it — so one deterministic workload exercises every tier under
each layout and checks the served answers against a single cold
reference (list backend, scalar kernel, serial).
"""

import random

import pytest

from repro.core.planner import Strategy
from tests.cache.helpers import (
    answer_pairs,
    conjunction,
    engine_from_table,
)

N = 60
M = 2


def make_table(seed=11):
    rng = random.Random(seed)
    levels = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
    return {
        f"o{i:03d}": [rng.choice(levels) for _ in range(M)] for i in range(N)
    }


LAYOUTS = (
    ("list", None, 1),
    ("array", "array", 1),
    ("sharded", "array", 3),
    ("memmap", "memmap", 1),
)


@pytest.mark.parametrize("kernel", ["scalar", "vector"])
@pytest.mark.parametrize("workers", [None, 4])
@pytest.mark.parametrize("label,backend,shards", LAYOUTS)
def test_all_tiers_match_cold_reference(
    label, backend, shards, workers, kernel, tmp_path
):
    table = make_table()
    query = conjunction(M)
    directory = str(tmp_path / label) if backend == "memmap" else None

    reference = engine_from_table(table, M)
    cold_10 = reference.top_k(query, k=10, prefer=Strategy.NRA)
    cold_4 = reference.top_k(query, k=4, prefer=Strategy.NRA)
    cold_25 = reference.top_k(query, k=25, prefer=Strategy.NRA)

    engine = engine_from_table(
        table,
        M,
        backend=backend,
        shards=shards,
        directory=directory,
        max_workers=workers,
        kernel=kernel,
    )
    cache = engine.configure_cache()

    # θ tier first, while no exact entry exists to shadow it: a θ fill
    # stores under its extended key, a looser repeat replays it, and the
    # later θ = 1.0 fill below stays byte-identical to cold — θ entries
    # are invisible to exact traffic.
    theta_fill = engine.top_k(query, k=10, prefer=Strategy.NRA, theta=1.5)
    assert theta_fill.extras.get("cache") is None
    assert theta_fill.approximation is not None
    theta_hit = engine.top_k(query, k=10, prefer=Strategy.NRA, theta=2.0)
    assert theta_hit.extras["cache"]["tier"] == "theta"
    assert answer_pairs(theta_hit) == answer_pairs(theta_fill)
    assert theta_hit.cost == theta_fill.cost

    fill = engine.top_k(query, k=10, prefer=Strategy.NRA)
    assert answer_pairs(fill) == answer_pairs(cold_10)
    assert fill.cost == cold_10.cost

    exact = engine.top_k(query, k=10, prefer=Strategy.NRA)
    assert exact.extras["cache"]["tier"] == "exact"
    assert answer_pairs(exact) == answer_pairs(cold_10)
    assert exact.cost == cold_10.cost

    prefix = engine.top_k(query, k=4, prefer=Strategy.NRA)
    assert prefix.extras["cache"]["tier"] == "prefix"
    assert prefix.answers.same_grade_multiset(cold_4.answers)
    assert prefix.cost.database_access_cost == 0

    warm = engine.top_k(query, k=25, prefer=Strategy.NRA)
    assert warm.extras["cache"]["tier"] == "warm"
    assert answer_pairs(warm) == answer_pairs(cold_25)
    assert warm.cost == cold_25.cost

    # After the exact fill, θ' requests at covered k ride tiers 1/2.
    theta_prefix = engine.top_k(query, k=4, prefer=Strategy.NRA, theta=3.0)
    assert theta_prefix.extras["cache"]["tier"] == "prefix"
    assert theta_prefix.approximation is None

    stats = cache.stats()
    assert stats["hits"] == 4  # theta + exact + prefix + theta-as-prefix
    assert stats["theta_hits"] == 1
    assert stats["warm_hits"] == 1
    assert stats["misses"] == 3  # theta fill, fill, the warm probe's miss
    assert stats["fills"] == 3
