"""Shared fixtures for the cache conformance suites.

``engine_from_table`` builds a fresh engine over a column table — every
differential comparison needs two independent engines (one cached, one
forever cold) over byte-identical data, so builders are cheap and pure.
"""

from repro.core.query import Atomic
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.list_subsystem import ListSubsystem


def engine_from_table(
    table,
    m,
    *,
    backend=None,
    shards=1,
    directory=None,
    max_workers=None,
    kernel=None,
):
    """A fresh engine serving ``m`` ranked lists from ``table``."""
    engine = MiddlewareEngine()
    subsystem = ListSubsystem("lists")
    for column in range(m):
        subsystem.add_list(
            f"c{column}",
            "x",
            {obj: row[column] for obj, row in table.items()},
        )
    engine.register(subsystem)
    if backend is not None or shards > 1:
        engine.configure_storage(backend, shards=shards, directory=directory)
    if max_workers is not None:
        engine.configure_parallelism(max_workers)
    if kernel is not None:
        engine.configure_kernel(kernel)
    return engine


def atom(column):
    return Atomic(f"c{column}", "x")


def conjunction(m):
    """The m-way fuzzy conjunction over the table's columns."""
    query = atom(0)
    for column in range(1, m):
        query = query & atom(column)
    return query


def answer_pairs(result):
    return [(item.object_id, item.grade) for item in result.answers]


def access_events(tracer):
    """The charged-access stream of a traced run, order-preserving."""
    return [
        (
            event["type"],
            event["source"],
            event["object"],
            event["grade"],
            event.get("position"),
        )
        for event in tracer.events
        if event["type"] in ("sorted", "random")
    ]


def assert_byte_identical(label, reference, result):
    __tracebackhide__ = True
    assert answer_pairs(result) == answer_pairs(reference), label
    assert result.cost == reference.cost, label
    assert result.sorted_depth == reference.sorted_depth, label
    assert result.grades_exact == reference.grades_exact, label
    assert result.algorithm == reference.algorithm, label
