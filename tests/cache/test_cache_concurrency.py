"""The cache under concurrent hammering: never torn, always accounted.

Extends the metrics-concurrency pattern (PR 7) to the cache: worker
threads race get/put/invalidate on the *same* key and the suite asserts
the three structural guarantees the module docstring promises — no
torn entries (every served answer is a certified top-k), bounded
duplicate fills (at most one wasted fill per racing thread), and exact
counter totals (every probe lands in exactly one bucket).
"""

import random
import threading

from repro.core.planner import Strategy
from repro.service import QueryService
from tests.cache.helpers import answer_pairs, conjunction, engine_from_table

THREADS = 8
ROUNDS = 25
M = 2


def make_engine(n=80, seed=13):
    rng = random.Random(seed)
    levels = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
    table = {
        f"o{i:03d}": [rng.choice(levels) for _ in range(M)] for i in range(n)
    }
    return engine_from_table(table, M), engine_from_table(table, M)


def hammer(work, threads=THREADS):
    errors = []
    barrier = threading.Barrier(threads)

    def runner(index):
        try:
            barrier.wait(timeout=30)
            work(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    pool = [threading.Thread(target=runner, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=60)
    if errors:
        raise errors[0]


def test_same_key_hammer_has_exact_totals_and_bounded_fills():
    engine, cold_engine = make_engine()
    cache = engine.configure_cache()
    query = conjunction(M)
    cold = cold_engine.top_k(query, k=10, prefer=Strategy.NRA)
    expected = answer_pairs(cold)

    def worker(index):
        for _ in range(ROUNDS):
            result = engine.top_k(query, k=10, prefer=Strategy.NRA)
            assert answer_pairs(result) == expected
            assert result.cost == cold.cost

    hammer(worker)

    stats = cache.stats()
    probes = THREADS * ROUNDS
    assert stats["hits"] + stats["misses"] == probes
    # A thread's own fill lands before its second probe, so only the
    # initial stampede can miss: duplicate fills are bounded by the
    # number of racing threads.
    assert 1 <= stats["misses"] <= THREADS
    assert stats["fills"] + stats["fill_races"] == stats["misses"]
    assert stats["entries"] == 1

    # The surviving entry is not torn: a fresh exact hit replays the
    # cold run byte-identically.
    final = engine.top_k(query, k=10, prefer=Strategy.NRA)
    assert final.extras["cache"]["tier"] == "exact"
    assert answer_pairs(final) == expected


def test_mixed_k_hammer_serves_certified_answers_at_every_tier():
    engine, cold_engine = make_engine()
    cache = engine.configure_cache()
    query = conjunction(M)
    ks = (4, 10, 25)
    cold = {
        k: cold_engine.top_k(query, k=k, prefer=Strategy.NRA) for k in ks
    }

    def worker(index):
        rng = random.Random(index)
        for _ in range(ROUNDS):
            k = rng.choice(ks)
            result = engine.top_k(query, k=k, prefer=Strategy.NRA)
            # Tier-independent invariant: a certified top-k under the
            # canonical grade multiset, whatever mix of exact, prefix,
            # warm, and plain fills the race produced.
            assert result.answers.same_grade_multiset(cold[k].answers)
            assert result.grades_exact

    hammer(worker)

    stats = cache.stats()
    probes = THREADS * ROUNDS
    assert stats["hits"] + stats["misses"] == probes
    assert stats["fills"] + stats["fill_races"] >= 1
    assert stats["entries"] == 1
    # Deepest fill wins: the entry now serves k=25 as an exact hit and
    # the shallower ks as prefix slices.
    assert (
        engine.top_k(query, k=25, prefer=Strategy.NRA)
        .extras["cache"]["tier"]
        == "exact"
    )
    assert (
        engine.top_k(query, k=4, prefer=Strategy.NRA)
        .extras["cache"]["tier"]
        == "prefix"
    )


def test_hammer_with_concurrent_invalidation_never_serves_stale():
    engine, cold_engine = make_engine()
    cache = engine.configure_cache()
    query = conjunction(M)
    cold = cold_engine.top_k(query, k=8, prefer=Strategy.NRA)
    expected = answer_pairs(cold)
    stop = threading.Event()

    def invalidator():
        while not stop.is_set():
            engine.invalidate()

    chaos = threading.Thread(target=invalidator)
    chaos.start()
    try:

        def worker(index):
            for _ in range(ROUNDS):
                result = engine.top_k(query, k=8, prefer=Strategy.NRA)
                assert answer_pairs(result) == expected

        hammer(worker)
    finally:
        stop.set()
        chaos.join(timeout=30)

    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == THREADS * ROUNDS
    result = engine.top_k(query, k=8, prefer=Strategy.NRA)
    assert answer_pairs(result) == expected


def test_service_counts_admission_hits_and_skips_the_queue():
    engine, cold_engine = make_engine()
    engine.configure_cache()
    query = conjunction(M)
    expected = answer_pairs(cold_engine.top_k(query, k=10))

    with QueryService(engine) as service:
        first = service.submit(query, 10)
        first.result(timeout=10)

        tickets = [service.submit(query, 10) for _ in range(5)]
        for ticket in tickets:
            result = ticket.result(timeout=10)
            assert answer_pairs(result) == expected
            assert result.extras["cache"]["tier"] == "exact"
            # Admission-time hits never waited for a worker.
            assert ticket.status == "done"
            assert ticket.finished_at == ticket.started_at

        metrics = service.metrics
        assert metrics.counter_total("service.cache.hit") == 5
        assert metrics.counter_total("service.cache.miss") == 1
        assert metrics.counter_total("service.admitted") == 6
        assert metrics.counter_total("service.completed") == 6


def test_service_hammer_hits_plus_misses_cover_every_submit():
    engine, cold_engine = make_engine()
    engine.configure_cache()
    query = conjunction(M)
    expected = cold_engine.top_k(query, k=10)

    with QueryService(engine) as service:

        def worker(index):
            for _ in range(ROUNDS):
                result = service.submit(query, 10).result(timeout=30)
                assert result.answers.same_grade_multiset(expected.answers)

        hammer(worker, threads=4)

        metrics = service.metrics
        submits = 4 * ROUNDS
        assert (
            metrics.counter_total("service.cache.hit")
            + metrics.counter_total("service.cache.miss")
            == submits
        )
        assert metrics.counter_total("service.completed") == submits
