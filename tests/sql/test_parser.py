"""Recursive-descent parser: structure, precedence, errors."""

import pytest

from repro.errors import QuerySyntaxError
from repro.sql.ast import AndExpr, NotExpr, OrExpr, Predicate
from repro.sql.parser import parse


def test_minimal_statement():
    statement = parse("SELECT * FROM albums WHERE Artist = 'Beatles'")
    assert statement.table == "albums"
    assert statement.condition == Predicate("Artist", "Beatles")
    assert statement.scoring_name is None
    assert statement.stop_after is None


def test_full_statement():
    statement = parse(
        "SELECT * FROM images WHERE Color = 'red' AND Shape = 'round' "
        "USING min STOP AFTER 10"
    )
    assert isinstance(statement.condition, AndExpr)
    assert statement.scoring_name == "min"
    assert statement.stop_after == 10


def test_and_or_precedence():
    statement = parse(
        "SELECT * FROM t WHERE A = 1 OR B = 2 AND C = 3"
    )
    condition = statement.condition
    assert isinstance(condition, OrExpr)
    assert condition.operands[0] == Predicate("A", 1)
    assert isinstance(condition.operands[1], AndExpr)


def test_parentheses_override_precedence():
    statement = parse("SELECT * FROM t WHERE (A = 1 OR B = 2) AND C = 3")
    assert isinstance(statement.condition, AndExpr)
    assert isinstance(statement.condition.operands[0], OrExpr)


def test_not_binds_tightly():
    statement = parse("SELECT * FROM t WHERE NOT A = 1 AND B = 2")
    condition = statement.condition
    assert isinstance(condition, AndExpr)
    assert isinstance(condition.operands[0], NotExpr)


def test_nested_not():
    statement = parse("SELECT * FROM t WHERE NOT NOT A = 1")
    assert isinstance(statement.condition, NotExpr)
    assert isinstance(statement.condition.operand, NotExpr)


def test_weight_annotations():
    statement = parse(
        "SELECT * FROM t WHERE Color = 'red' WEIGHT 0.7 AND Shape = 'round' WEIGHT 0.3"
    )
    ops = statement.condition.operands
    assert ops[0].weight == pytest.approx(0.7)
    assert ops[1].weight == pytest.approx(0.3)


def test_literal_types():
    statement = parse("SELECT * FROM t WHERE A = 1 AND B = 2.5 AND C = red")
    ops = statement.condition.operands
    assert ops[0].target == 1 and isinstance(ops[0].target, int)
    assert ops[1].target == pytest.approx(2.5)
    assert ops[2].target == "red"


def test_stop_after_validation():
    with pytest.raises(QuerySyntaxError):
        parse("SELECT * FROM t WHERE A = 1 STOP AFTER 0")
    with pytest.raises(QuerySyntaxError):
        parse("SELECT * FROM t WHERE A = 1 STOP AFTER 2.5")


@pytest.mark.parametrize(
    "bad",
    [
        "SELECT FROM t WHERE A = 1",       # missing *
        "SELECT * FROM WHERE A = 1",       # missing table
        "SELECT * FROM t",                 # missing WHERE
        "SELECT * FROM t WHERE A =",       # missing literal
        "SELECT * FROM t WHERE A = 1 extra",  # trailing junk
        "SELECT * FROM t WHERE (A = 1",    # unclosed paren
        "SELECT * FROM t WHERE A = 1 STOP 5",  # missing AFTER
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(QuerySyntaxError):
        parse(bad)


def test_projection_column_list():
    statement = parse("SELECT Artist, Title FROM t WHERE A = 1")
    assert statement.columns == ("Artist", "Title")
    star = parse("SELECT * FROM t WHERE A = 1")
    assert star.columns is None


def test_projection_trailing_comma_rejected():
    with pytest.raises(QuerySyntaxError):
        parse("SELECT Artist, FROM t WHERE A = 1")
