"""Lowering and execution of SQL statements."""

import pytest

from repro.core.query import And, Atomic, Not, Or, Scored, Weighted
from repro.errors import QuerySyntaxError
from repro.scoring import means, tnorms
from repro.sql.compiler import compile_sql, execute, resolve_scoring
from repro.workloads.cd_store import build_store, generate_catalog


def test_plain_conjunction_lowers_to_and():
    query = compile_sql("SELECT * FROM t WHERE A = 1 AND B = 2")
    assert isinstance(query, And)
    assert query.children == (Atomic("A", 1), Atomic("B", 2))


def test_using_turns_and_into_scored():
    query = compile_sql("SELECT * FROM t WHERE A = 1 AND B = 2 USING mean")
    assert isinstance(query, Scored)
    assert query.scoring is means.MEAN


def test_weights_turn_and_into_weighted():
    query = compile_sql(
        "SELECT * FROM t WHERE A = 1 WEIGHT 0.6 AND B = 2 WEIGHT 0.4"
    )
    assert isinstance(query, Weighted)
    assert query.weights == pytest.approx((0.6, 0.4))
    assert query.base is tnorms.MIN


def test_weights_with_using_base():
    query = compile_sql(
        "SELECT * FROM t WHERE A = 1 WEIGHT 0.6 AND B = 2 WEIGHT 0.4 USING product"
    )
    assert isinstance(query, Weighted)
    assert query.base is tnorms.PRODUCT


def test_partial_weights_fill_leftover_mass():
    query = compile_sql(
        "SELECT * FROM t WHERE A = 1 WEIGHT 0.5 AND B = 2 AND C = 3"
    )
    assert isinstance(query, Weighted)
    assert query.weights == pytest.approx((0.5, 0.25, 0.25))


def test_all_zero_weights_rejected():
    with pytest.raises(QuerySyntaxError):
        compile_sql("SELECT * FROM t WHERE A = 1 WEIGHT 0 AND B = 2 WEIGHT 0")


def test_or_and_not_lower_directly():
    query = compile_sql("SELECT * FROM t WHERE A = 1 OR NOT B = 2")
    assert isinstance(query, Or)
    assert isinstance(query.children[1], Not)


def test_using_applies_to_or():
    query = compile_sql("SELECT * FROM t WHERE A = 1 OR B = 2 USING max")
    assert isinstance(query, Scored)
    assert query.scoring.name == "max"


def test_unknown_scoring_rejected():
    with pytest.raises(QuerySyntaxError):
        resolve_scoring("telepathy")
    assert resolve_scoring("MIN") is tnorms.MIN  # case-insensitive


def test_execute_against_cd_store():
    engine = build_store(generate_catalog(300, seed=2))
    result = execute(
        "SELECT * FROM albums WHERE Artist = 'Beatles' AND AlbumColor = 'red' "
        "STOP AFTER 5",
        engine,
    )
    assert len(result.answers) == 5
    assert result.algorithm == "boolean-first"


def test_execute_uses_default_k():
    engine = build_store(generate_catalog(300, seed=2))
    result = execute(
        "SELECT * FROM albums WHERE AlbumColor = 'red'", engine, default_k=7
    )
    assert len(result.answers) == 7


def test_execute_weighted_query():
    engine = build_store(generate_catalog(200, seed=3))
    result = execute(
        "SELECT * FROM albums WHERE AlbumColor = 'red' WEIGHT 0.8 "
        "AND AlbumColor = 'blue' WEIGHT 0.2 STOP AFTER 3",
        engine,
    )
    assert len(result.answers) == 3


def test_execute_disjunction_uses_mk_algorithm():
    engine = build_store(generate_catalog(200, seed=3))
    result = execute(
        "SELECT * FROM albums WHERE AlbumColor = 'red' OR AlbumColor = 'blue' "
        "STOP AFTER 4",
        engine,
    )
    assert result.algorithm == "disjunction-max"
    assert result.database_access_cost == 8


def test_projection_hydrates_rows():
    engine = build_store(generate_catalog(200, seed=5))
    result = execute(
        "SELECT Artist, Title FROM albums "
        "WHERE Artist = 'Beatles' AND AlbumColor = 'red' STOP AFTER 3",
        engine,
    )
    rows = result.extras["rows"]
    assert len(rows) == 3
    for row in rows:
        assert set(row) == {"object_id", "grade", "Artist", "Title"}
        if row["grade"] > 0:
            assert row["Artist"] == "Beatles"


def test_projection_unknown_column_rejected():
    engine = build_store(generate_catalog(100, seed=5))
    with pytest.raises(QuerySyntaxError):
        execute(
            "SELECT Smell FROM albums WHERE AlbumColor = 'red' STOP AFTER 2",
            engine,
        )


def test_star_keeps_plain_result():
    engine = build_store(generate_catalog(100, seed=5))
    result = execute(
        "SELECT * FROM albums WHERE AlbumColor = 'red' STOP AFTER 2", engine
    )
    assert "rows" not in result.extras
