"""Tokenizer for the SQL-like language."""

import pytest

from repro.errors import QuerySyntaxError
from repro.sql.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def test_keywords_case_insensitive():
    assert kinds("select FROM where")[:3] == ["SELECT", "FROM", "WHERE"]


def test_identifiers_and_literals():
    tokens = tokenize("Color = 'red' 3.14 42")
    assert [t.kind for t in tokens] == [
        "IDENT", "EQUALS", "STRING", "NUMBER", "NUMBER", "EOF",
    ]
    assert tokens[2].text == "'red'"


def test_string_with_escaped_quote():
    tokens = tokenize(r"'it\'s'")
    assert tokens[0].kind == "STRING"


def test_punctuation():
    assert kinds("( ) * = ,")[:5] == ["LPAREN", "RPAREN", "STAR", "EQUALS", "COMMA"]


def test_positions_recorded():
    tokens = tokenize("SELECT *")
    assert tokens[0].position == 0
    assert tokens[1].position == 7


def test_unknown_character_raises_with_position():
    with pytest.raises(QuerySyntaxError) as excinfo:
        tokenize("SELECT ;")
    assert "position 7" in str(excinfo.value)


def test_hyphenated_identifier():
    tokens = tokenize("geometric-mean")
    assert tokens[0].kind == "IDENT"
    assert tokens[0].text == "geometric-mean"


def test_eof_always_appended():
    assert tokenize("")[-1].kind == "EOF"


# ----------------------------------------------------------------------
# Fuzzing: the front end fails only with QuerySyntaxError
# ----------------------------------------------------------------------
from hypothesis import given, settings, strategies as st

from repro.sql.parser import parse


@given(st.text(max_size=60))
@settings(max_examples=200, deadline=None)
def test_lexer_never_raises_unexpected_exceptions(text):
    try:
        tokenize(text)
    except QuerySyntaxError:
        pass


_fragments = st.sampled_from(
    ["SELECT", "*", "FROM", "WHERE", "AND", "OR", "NOT", "USING", "STOP",
     "AFTER", "WEIGHT", "(", ")", "=", ",", "Color", "'red'", "0.5", "10"]
)


@given(st.lists(_fragments, max_size=12).map(" ".join))
@settings(max_examples=300, deadline=None)
def test_parser_never_raises_unexpected_exceptions(text):
    try:
        parse(text)
    except QuerySyntaxError:
        pass
