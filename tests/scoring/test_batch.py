"""Batch scoring (``combine_matrix`` / ``negate_matrix``) vs the scalar
path, across the whole rule catalog.

Two tiers of agreement (see repro/scoring/base.py):

* every rule agrees with per-row ``__call__`` to within 1e-12;
* rules declaring ``batch_exact`` are *bit-identical* — that stronger
  promise is what lets the vector kernels reproduce scalar stop
  decisions byte for byte.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GradeError, ScoringError
from repro.kernels import GradeMatrix
from repro.scoring import (
    conorm_catalog,
    mean_catalog,
    negation_catalog,
    tnorm_catalog,
)
from repro.scoring.base import FunctionScoring
from repro.scoring.owa import OwaScoring, owa_mean
from repro.scoring.tnorms import MIN, PRODUCT
from repro.scoring.weighted import WeightedScoring

CATALOG = tuple(tnorm_catalog()) + tuple(conorm_catalog()) + tuple(mean_catalog())

# Non-symmetric rules exercise column order: weighted rules with uneven
# weights and OWA with a decreasing weight vector.
NON_SYMMETRIC = (
    WeightedScoring(MIN, (0.6, 0.4)),
    WeightedScoring(MIN, (0.5, 0.3, 0.2)),
    WeightedScoring(PRODUCT, (0.7, 0.2, 0.1)),
    OwaScoring((0.6, 0.3, 0.1)),
    owa_mean(2),
    owa_mean(3),
)

ALL_RULES = CATALOG + NON_SYMMETRIC

GRADE_LEVELS = (0.0, 1e-9, 0.1, 0.25, 0.5, 1 / 3, 0.75, 0.9, 1.0 - 1e-9, 1.0)


def arity_of(rule):
    """Fixed arity for weighted/OWA rules, else None (any arity)."""
    weights = getattr(rule, "weights", None)
    return len(weights) if weights is not None else None


@st.composite
def grade_matrices(draw, rule):
    m = arity_of(rule) or draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=0, max_value=12))
    grades = st.one_of(
        st.sampled_from(GRADE_LEVELS),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    rows = draw(st.lists(st.lists(grades, min_size=m, max_size=m),
                         min_size=n, max_size=n))
    return rows


@pytest.mark.parametrize("rule", ALL_RULES, ids=lambda rule: rule.name)
@settings(deadline=None, max_examples=30)
@given(data=st.data())
def test_combine_matrix_matches_scalar(rule, data):
    rows = data.draw(grade_matrices(rule))
    matrix = np.asarray(rows, dtype=np.float64).reshape(
        len(rows), len(rows[0]) if rows else (arity_of(rule) or 1)
    )
    batch = rule.combine_matrix(matrix)
    assert batch.shape == (len(rows),)
    for i, row in enumerate(rows):
        expected = rule(row)
        if rule.batch_exact:
            assert batch[i] == expected, (rule.name, row)
        else:
            assert batch[i] == pytest.approx(expected, abs=1e-12), (rule.name, row)


@pytest.mark.parametrize(
    "rule",
    CATALOG + (WeightedScoring(MIN, (1.0,)), owa_mean(1)),
    ids=lambda rule: rule.name,
)
def test_degenerate_single_column(rule):
    """m=1 folds nothing: the output must equal the input column."""
    column = np.asarray([[g] for g in GRADE_LEVELS])
    batch = rule.combine_matrix(column)
    for grade, got in zip(GRADE_LEVELS, batch):
        assert got == rule([grade])


def test_empty_batch_returns_empty():
    out = MIN.combine_matrix(np.empty((0, 3)))
    assert out.shape == (0,)


@pytest.mark.parametrize("rule", (MIN, owa_mean(2)), ids=lambda r: r.name)
def test_bad_shapes_rejected(rule):
    with pytest.raises(ScoringError):
        rule.combine_matrix(np.asarray([0.1, 0.2, 0.3]))  # 1-d
    with pytest.raises(ScoringError):
        rule.combine_matrix(np.zeros((2, 2, 2)))  # 3-d
    with pytest.raises(ScoringError):
        rule.combine_matrix(np.zeros((4, 0)))  # empty grade tuple


@pytest.mark.parametrize("bad", (-0.1, 1.5, float("nan"), float("inf")))
def test_out_of_range_grades_rejected(bad):
    with pytest.raises(GradeError):
        MIN.combine_matrix(np.asarray([[0.5, bad]]))


def test_rule_escaping_the_unit_interval_rejected():
    rogue = FunctionScoring(lambda grades: sum(grades), name="rogue")
    with pytest.raises(GradeError):
        rogue.combine_matrix(np.asarray([[0.9, 0.9]]))


def test_function_scoring_uses_the_exact_scalar_fallback():
    rule = FunctionScoring(lambda grades: max(grades) * 0.5, name="half-max")
    assert not rule.supports_batch
    assert rule.batch_exact  # the row loop IS the scalar path
    matrix = np.asarray([[0.2, 0.8], [1.0, 0.3], [0.0, 0.0]])
    batch = rule.combine_matrix(matrix)
    for row, got in zip(matrix.tolist(), batch):
        assert got == rule(row)


@pytest.mark.parametrize("negation", negation_catalog(), ids=lambda n: n.name)
def test_negate_matrix_matches_scalar(negation):
    values = np.asarray(GRADE_LEVELS)
    batch = negation.negate_matrix(values)
    for grade, got in zip(GRADE_LEVELS, batch):
        assert got == pytest.approx(negation(grade), abs=1e-12)
    # shape-preserving over matrices too
    square = values.reshape(2, 5)
    assert negation.negate_matrix(square).shape == (2, 5)
    with pytest.raises(GradeError):
        negation.negate_matrix(np.asarray([0.5, 1.5]))


# ---------------------------------------------------------------------------
# GradeMatrix bound helpers, including all-NaN (never-seen) rows.


def test_grade_matrix_bounds_with_all_nan_rows():
    matrix = GradeMatrix(3, capacity=2)
    matrix.set_grade("a", 0, 0.9)
    matrix.set_grade("a", 2, 0.4)
    matrix.row_of("b")  # b: no grades learned at all
    matrix.set_grade("c", 1, 0.7)
    bottoms = (0.5, 0.6, 0.3)

    lower = matrix.lower_bounds(MIN)
    upper = matrix.upper_bounds(MIN, bottoms)
    # a: known (0.9, ?, 0.4) -> lower fills 0, upper fills bottom 0.6
    assert lower[0] == MIN([0.9, 0.0, 0.4]) == 0.0
    assert upper[0] == MIN([0.9, 0.6, 0.4])
    # b: nothing known -> lower 0, upper = rule(bottoms)
    assert lower[1] == 0.0
    assert upper[1] == MIN(bottoms)
    # c: only the middle grade known
    assert lower[2] == 0.0
    assert upper[2] == MIN([0.5, 0.7, 0.3])

    complete = matrix.complete_mask()
    assert complete.tolist() == [False, False, False]
    matrix.set_grade("a", 1, 1.0)
    assert matrix.complete_mask().tolist() == [True, False, False]
    assert matrix.lower_bounds(MIN)[0] == MIN([0.9, 1.0, 0.4])


def test_grade_matrix_top_order_breaks_ties_like_graded_item():
    matrix = GradeMatrix(1)
    for object_id in ("b", "a", "c", "d"):
        matrix.row_of(object_id)
    scores = np.asarray([0.5, 0.5, 0.9, 0.5])
    order = matrix.top_order(scores)
    assert [matrix.ids[row] for row in order] == ["c", "a", "b", "d"]


# ---------------------------------------------------------------------------
# GradeMatrix snapshots: copy()/state_dict() and the growth hazard.
#
# The stale-array-after-growth bug class (the PR 5 fix set_grade's
# docstring warns about): _ensure replaces _matrix wholesale, so any
# snapshot that aliased the old array would silently stop seeing — or
# worse, keep writing — grades after either side grows.  These tests
# grow both sides past the shared capacity and assert full isolation.


def _grade_rows(matrix):
    return {
        object_id: [
            None if value != value else value
            for value in matrix._matrix[matrix._rows[object_id]]
        ]
        for object_id in matrix.ids
    }


def test_grade_matrix_copy_is_growth_safe():
    original = GradeMatrix(2, capacity=2)
    original.set_grade("a", 0, 0.9)
    original.set_grade("b", 1, 0.4)
    clone = original.copy()
    before = _grade_rows(original)
    assert _grade_rows(clone) == before

    # Grow and mutate both sides well past the snapshot capacity.
    for index in range(20):
        original.set_grade(f"orig{index}", 0, 0.1)
        clone.set_grade(f"clone{index}", 1, 0.2)
    original.set_grade("a", 1, 1.0)
    clone.set_grade("b", 0, 0.3)

    # Neither side saw the other's writes, pre- or post-growth.
    assert _grade_rows(original)["a"] == [0.9, 1.0]
    assert _grade_rows(original)["b"] == [None, 0.4]
    assert _grade_rows(clone)["a"] == [0.9, None]
    assert _grade_rows(clone)["b"] == [0.3, 0.4]
    assert all(key.startswith(("a", "b", "orig")) for key in _grade_rows(original))
    assert all(key.startswith(("a", "b", "clone")) for key in _grade_rows(clone))


def test_grade_matrix_state_dict_round_trip_preserves_row_order():
    matrix = GradeMatrix(3, capacity=2)
    matrix.set_grade("b", 0, 0.5)
    matrix.row_of("a")  # seen, nothing learned: must survive the trip
    matrix.set_grade("c", 2, 0.75)
    matrix.set_grade("b", 1, 0.9)

    state = matrix.state_dict()
    # Plain built-ins only: cache entries and JSON both accept it.
    import json

    restored = GradeMatrix.from_state_dict(json.loads(json.dumps(state)))
    assert restored.ids == matrix.ids  # first-seen row order
    assert _grade_rows(restored) == _grade_rows(matrix)

    # Restored matrices are live, not frozen views: growth after restore
    # must not disturb the restored grades (the same hazard as copy()).
    for index in range(20):
        restored.set_grade(f"new{index}", 0, 0.1)
    assert _grade_rows(restored)["b"] == [0.5, 0.9, None]
    assert _grade_rows(restored)["c"] == [None, None, 0.75]
    assert _grade_rows(matrix) == _grade_rows(GradeMatrix.from_state_dict(state))
