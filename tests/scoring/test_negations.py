"""Negation families: boundary conditions, involution, monotonicity."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GradeError
from repro.scoring import negations

CATALOG = negations.negation_catalog()
grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@pytest.mark.parametrize("negation", CATALOG, ids=lambda n: n.name)
def test_boundary_conditions(negation):
    assert negation(0.0) == pytest.approx(1.0)
    assert negation(1.0) == pytest.approx(0.0)


@pytest.mark.parametrize("negation", CATALOG, ids=lambda n: n.name)
@given(a=grades, b=grades)
def test_decreasing(negation, a, b):
    lo, hi = min(a, b), max(a, b)
    assert negation(lo) >= negation(hi) - 1e-12


def test_standard_negation_values():
    assert negations.STANDARD(0.3) == pytest.approx(0.7)


def test_sugeno_zero_is_standard():
    sugeno = negations.SugenoNegation(0.0)
    for x in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert sugeno(x) == pytest.approx(1.0 - x)


def test_sugeno_is_involution():
    for lam in (0.5, 2.0, -0.5):
        assert negations.SugenoNegation(lam).is_involution()


def test_yager_w1_is_standard():
    yager = negations.YagerNegation(1.0)
    for x in (0.0, 0.3, 1.0):
        assert yager(x) == pytest.approx(1.0 - x)


def test_yager_is_involution():
    for w in (0.5, 2.0, 3.0):
        assert negations.YagerNegation(w).is_involution()


def test_invalid_parameters():
    with pytest.raises(ValueError):
        negations.SugenoNegation(-1.0)
    with pytest.raises(ValueError):
        negations.YagerNegation(0.0)


def test_out_of_range_input():
    with pytest.raises(GradeError):
        negations.STANDARD(1.2)
