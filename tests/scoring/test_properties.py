"""The property checkers themselves: they must catch planted violations
(Theorem 3.1's empirical content depends on the checkers being sharp)."""

import pytest

from repro.scoring import conorms, means, negations, tnorms
from repro.scoring.base import FunctionScoring
from repro.scoring.properties import (
    check_associativity,
    check_commutativity,
    check_conorm_conservation,
    check_de_morgan,
    check_equivalence_preservation,
    check_local_linearity,
    check_monotonicity,
    check_strictness,
    check_tnorm_conservation,
    certify_monotone,
)


def rule(func, name="probe"):
    return FunctionScoring(func, name=name)


# ----------------------------------------------------------------------
# Checkers accept the genuine article ...
# ----------------------------------------------------------------------
def test_min_passes_everything():
    assert check_tnorm_conservation(tnorms.MIN)
    assert check_monotonicity(tnorms.MIN)
    assert check_commutativity(tnorms.MIN)
    assert check_associativity(tnorms.MIN)
    assert check_strictness(tnorms.MIN)


# ----------------------------------------------------------------------
# ... and reject planted violations with witnesses.
# ----------------------------------------------------------------------
def test_conservation_catches_mean():
    report = check_tnorm_conservation(means.MEAN)
    assert not report
    assert report.witness is not None


def test_monotonicity_catches_decreasing_rule():
    decreasing = rule(lambda g: 1.0 - min(g))
    report = check_monotonicity(decreasing)
    assert not report
    lo, hi = report.witness
    assert all(a <= b for a, b in zip(lo, hi))


def test_commutativity_catches_asymmetric_rule():
    first = rule(lambda g: g[0])
    assert not check_commutativity(first)


def test_associativity_catches_mean():
    # mean(mean(a,b),c) != mean(a,mean(b,c)) in general
    pair_mean = rule(lambda g: sum(g) / len(g))
    assert not check_associativity(pair_mean)


def test_strictness_catches_max():
    report = check_strictness(conorms.MAX)
    assert not report
    assert report.witness is not None


def test_conorm_conservation_catches_min():
    assert not check_conorm_conservation(tnorms.MIN)


def test_de_morgan_catches_mismatched_pair():
    # min with probabilistic sum is NOT a De Morgan pair.
    assert not check_de_morgan(
        tnorms.MIN, conorms.PROBABILISTIC_SUM, negations.STANDARD
    )


# ----------------------------------------------------------------------
# Theorem 3.1: min/max uniquely preserve positive-query equivalence.
# ----------------------------------------------------------------------
def test_zadeh_pair_preserves_equivalences():
    assert check_equivalence_preservation(tnorms.MIN, conorms.MAX)


@pytest.mark.parametrize(
    "tnorm,conorm",
    [
        (tnorms.PRODUCT, conorms.PROBABILISTIC_SUM),
        (tnorms.LUKASIEWICZ, conorms.BOUNDED_SUM),
        (tnorms.EINSTEIN, conorms.DualConorm(tnorms.EINSTEIN)),
        (tnorms.DRASTIC, conorms.DRASTIC_CONORM),
    ],
    ids=["product", "lukasiewicz", "einstein", "drastic"],
)
def test_every_other_pair_fails_equivalences(tnorm, conorm):
    """The empirical half of Theorem 3.1: any monotone pair other than
    (min, max) violates some positive-query identity."""
    report = check_equivalence_preservation(tnorm, conorm)
    assert not report
    assert "fails" in report.detail


def test_idempotence_is_the_usual_witness_for_product():
    # product(a, a) = a^2 != a for a strictly inside (0, 1)
    assert tnorms.PRODUCT((0.5, 0.5)) != 0.5


# ----------------------------------------------------------------------
# Local linearity checker
# ----------------------------------------------------------------------
def test_local_linearity_accepts_min():
    assert check_local_linearity(tnorms.MIN)


def test_local_linearity_is_about_the_family_not_the_rule():
    """Every symmetric base rule yields a locally linear family — the
    checker exercises the *construction*, so it passes for means too."""
    assert check_local_linearity(means.GEOMETRIC_MEAN)


# ----------------------------------------------------------------------
# The monotonicity certificate used by the middleware guard
# ----------------------------------------------------------------------
def test_certify_monotone_accepts_weighted_user_rule():
    user = rule(lambda g: 0.7 * g[0] + 0.3 * g[1], "user-weighted")
    assert certify_monotone(user, 2)


def test_certify_monotone_rejects_subtraction_rule():
    user = rule(lambda g: max(0.0, g[0] - g[1]), "user-difference")
    assert not certify_monotone(user, 2)
