"""Co-norm catalog: V-conservation, duality, and non-strictness."""

import pytest
from hypothesis import given, strategies as st

from repro.scoring import conorms, negations, tnorms
from repro.scoring.properties import (
    check_associativity,
    check_commutativity,
    check_conorm_conservation,
    check_de_morgan,
    check_monotonicity,
    check_strictness,
)

CATALOG = conorms.conorm_catalog()
grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@pytest.mark.parametrize("rule", CATALOG, ids=lambda r: r.name)
def test_conorm_axioms(rule):
    assert check_conorm_conservation(rule)
    assert check_monotonicity(rule)
    assert check_commutativity(rule)
    assert check_associativity(rule)


@pytest.mark.parametrize("rule", CATALOG, ids=lambda r: r.name)
@given(a=grades, b=grades)
def test_dominates_max(rule, a, b):
    """Every co-norm is pointwise at least max."""
    assert rule((a, b)) >= max(a, b) - 1e-12


@pytest.mark.parametrize("rule", CATALOG, ids=lambda r: r.name)
def test_conorms_are_not_strict(rule):
    """s(1, x) = 1 for x < 1, so no co-norm is strict — the structural
    reason the m*k disjunction algorithm escapes the Theorem 4.2 lower
    bound."""
    assert not check_strictness(rule)
    assert rule((1.0, 0.3)) == pytest.approx(1.0)


def test_max_exact_values():
    assert conorms.MAX((0.3, 0.7)) == 0.7
    assert conorms.MAX((0.3, 0.7, 0.5)) == 0.7


def test_probabilistic_sum_exact():
    assert conorms.PROBABILISTIC_SUM((0.5, 0.5)) == pytest.approx(0.75)


def test_bounded_sum_exact():
    assert conorms.BOUNDED_SUM((0.7, 0.5)) == 1.0
    assert conorms.BOUNDED_SUM((0.2, 0.3)) == pytest.approx(0.5)


def test_drastic_conorm_is_largest():
    for rule in CATALOG:
        for a, b in ((0.2, 0.9), (0.5, 0.5), (0.01, 0.01)):
            assert rule((a, b)) <= conorms.DRASTIC_CONORM((a, b)) + 1e-12


@pytest.mark.parametrize(
    "tnorm,conorm", conorms.DE_MORGAN_PAIRS, ids=lambda x: getattr(x, "name", "")
)
def test_de_morgan_duality_with_standard_negation(tnorm, conorm):
    assert check_de_morgan(tnorm, conorm, negations.STANDARD)


def test_dual_conorm_construction_matches_closed_forms():
    dual_of_product = conorms.DualConorm(tnorms.PRODUCT)
    for a, b in ((0.2, 0.9), (0.5, 0.5), (0.0, 1.0)):
        assert dual_of_product((a, b)) == pytest.approx(
            conorms.PROBABILISTIC_SUM((a, b))
        )


def test_dual_of_min_is_max():
    dual = conorms.DualConorm(tnorms.MIN)
    for a, b in ((0.1, 0.9), (0.6, 0.4)):
        assert dual((a, b)) == pytest.approx(max(a, b))
