"""Bundled fuzzy semantics."""

import pytest

from repro.scoring import conorms, tnorms
from repro.scoring.base import FunctionScoring
from repro.scoring.zadeh import ALL_SEMANTICS, LUKASIEWICZ_LOGIC, PROBABILISTIC, ZADEH, FuzzySemantics


def test_zadeh_components():
    assert ZADEH.conjunction is tnorms.MIN
    assert ZADEH.disjunction is conorms.MAX
    assert ZADEH.negation(0.25) == pytest.approx(0.75)


def test_all_semantics_have_monotone_rules():
    for semantics in ALL_SEMANTICS:
        assert semantics.conjunction.is_monotone
        assert semantics.disjunction.is_monotone


def test_probabilistic_values():
    assert PROBABILISTIC.conjunction((0.5, 0.5)) == pytest.approx(0.25)
    assert PROBABILISTIC.disjunction((0.5, 0.5)) == pytest.approx(0.75)


def test_lukasiewicz_values():
    assert LUKASIEWICZ_LOGIC.conjunction((0.7, 0.7)) == pytest.approx(0.4)
    assert LUKASIEWICZ_LOGIC.disjunction((0.7, 0.7)) == 1.0


def test_semantics_rejects_non_monotone_rules():
    bad = FunctionScoring(lambda g: 1 - min(g), "decreasing", is_monotone=False)
    with pytest.raises(ValueError):
        FuzzySemantics("broken", bad, conorms.MAX)
