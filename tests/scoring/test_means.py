"""Mean-type rules: strict, monotone, and NOT t-norms (the TZZ79 point)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import WeightingError
from repro.scoring import means
from repro.scoring.properties import (
    check_monotonicity,
    check_strictness,
    check_tnorm_conservation,
)

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
CATALOG = means.mean_catalog()


@pytest.mark.parametrize("rule", CATALOG, ids=lambda r: r.name)
def test_means_are_monotone(rule):
    assert check_monotonicity(rule)
    assert check_monotonicity(rule, arity=3)


@pytest.mark.parametrize("rule", means.STANDARD_MEANS, ids=lambda r: r.name)
def test_standard_means_are_strict(rule):
    """Strictness + monotonicity is all Theorems 4.1/4.2 need — the
    paper's reason for caring about means despite their not being
    t-norms."""
    assert check_strictness(rule)
    assert check_strictness(rule, arity=3)


def test_arithmetic_mean_violates_conservation():
    """The paper's explicit example: mean(0, 1) = 1/2, not 0, so the
    arithmetic mean does not conserve propositional semantics."""
    assert means.MEAN((0.0, 1.0)) == pytest.approx(0.5)
    assert not check_tnorm_conservation(means.MEAN)


def test_geometric_mean_values():
    assert means.GEOMETRIC_MEAN((0.25, 1.0)) == pytest.approx(0.5)
    assert means.GEOMETRIC_MEAN((0.0, 0.9)) == 0.0


def test_harmonic_mean_values():
    assert means.HARMONIC_MEAN((0.5, 1.0)) == pytest.approx(2 / 3)
    assert means.HARMONIC_MEAN((0.0, 1.0)) == 0.0


@given(a=grades, b=grades)
def test_classical_mean_inequality(a, b):
    """harmonic <= geometric <= arithmetic."""
    h = means.HARMONIC_MEAN((a, b))
    g = means.GEOMETRIC_MEAN((a, b))
    m = means.MEAN((a, b))
    assert h <= g + 1e-9
    assert g <= m + 1e-9


@given(a=grades, b=grades)
def test_power_mean_orders_by_exponent(a, b):
    low = means.PowerMean(-1.0)((a, b))
    mid = means.MEAN((a, b))
    high = means.PowerMean(2.0)((a, b))
    assert low <= mid + 1e-9 <= high + 2e-9


def test_power_mean_rejects_zero_exponent():
    with pytest.raises(ValueError):
        means.PowerMean(0.0)


def test_median_even_and_odd():
    assert means.MEDIAN((0.1, 0.9)) == pytest.approx(0.5)
    assert means.MEDIAN((0.1, 0.5, 0.9)) == pytest.approx(0.5)
    assert means.MEDIAN((0.1, 0.2, 0.8, 0.9)) == pytest.approx(0.5)


def test_median_is_monotone_but_not_strict():
    assert check_monotonicity(means.MEDIAN, arity=3)
    assert not check_strictness(means.MEDIAN, arity=3)
    # witness: median hits 1 without all arguments being 1
    assert means.MEDIAN((1.0, 1.0, 0.0)) == 1.0


def test_weighted_mean_basic():
    rule = means.WeightedArithmeticMean((2.0, 1.0))
    assert rule((0.9, 0.3)) == pytest.approx(2 / 3 * 0.9 + 1 / 3 * 0.3)


def test_weighted_mean_wrong_arity():
    rule = means.WeightedArithmeticMean((0.5, 0.5))
    with pytest.raises(WeightingError):
        rule((0.1, 0.2, 0.3))


def test_weighted_mean_rejects_bad_weights():
    with pytest.raises(WeightingError):
        means.WeightedArithmeticMean((-1.0, 2.0))
    with pytest.raises(WeightingError):
        means.WeightedArithmeticMean((0.0, 0.0))


def test_weighted_mean_strictness_flag_tracks_weights():
    assert means.WeightedArithmeticMean((0.5, 0.5)).is_strict
    assert not means.WeightedArithmeticMean((1.0, 0.0)).is_strict
