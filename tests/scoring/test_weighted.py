"""The Fagin–Wimmers weighted rule: formula values and desiderata D1-D3'."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import WeightingError
from repro.scoring import means, tnorms
from repro.scoring.properties import (
    check_local_linearity,
    check_monotonicity,
    check_strictness,
)
from repro.scoring.weighted import (
    WeightedScoring,
    mixture,
    uniform_weighting,
    validate_weighting,
    weighted_score,
)


def ordered_weightings(m):
    """Hypothesis strategy for ordered weightings of length m."""
    return (
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=m,
            max_size=m,
        )
        .map(lambda ws: sorted(ws, reverse=True))
        .map(lambda ws: tuple(w / sum(ws) for w in ws))
    )


grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


# ----------------------------------------------------------------------
# The formula itself
# ----------------------------------------------------------------------
def test_formula_hand_computed_min():
    # Theta = (2/3, 1/3), f = min:
    # (2/3 - 1/3) * min(x1) + 2 * (1/3) * min(x1, x2)
    value = weighted_score(tnorms.MIN, (2 / 3, 1 / 3), (0.9, 0.6))
    expected = (1 / 3) * 0.9 + (2 / 3) * 0.6
    assert value == pytest.approx(expected)


def test_formula_hand_computed_three_args():
    theta = (0.5, 0.3, 0.2)
    xs = (0.9, 0.6, 0.3)
    expected = (
        (0.5 - 0.3) * 0.9
        + 2 * (0.3 - 0.2) * min(0.9, 0.6)
        + 3 * 0.2 * min(0.9, 0.6, 0.3)
    )
    assert weighted_score(tnorms.MIN, theta, xs) == pytest.approx(expected)


def test_weighted_average_is_plain_weighted_average():
    """For f = arithmetic mean the weighted version is the weighted mean
    (the paper's 'easy' case)."""
    theta = (0.7, 0.3)
    xs = (0.4, 0.9)
    value = weighted_score(means.MEAN, theta, xs)
    assert value == pytest.approx(0.7 * 0.4 + 0.3 * 0.9)


@given(theta=ordered_weightings(3), xs=st.tuples(grades, grades, grades))
def test_weighted_mean_closed_form_property(theta, xs):
    value = weighted_score(means.MEAN, theta, xs)
    expected = sum(w * x for w, x in zip(theta, xs))
    assert value == pytest.approx(expected, abs=1e-9)


def test_unordered_weights_sort_arguments_jointly():
    # weight 0.3 on x1=0.9, weight 0.7 on x2=0.6 must equal the ordered
    # call with the pairs swapped.
    unordered = weighted_score(tnorms.MIN, (0.3, 0.7), (0.9, 0.6))
    ordered = weighted_score(tnorms.MIN, (0.7, 0.3), (0.6, 0.9))
    assert unordered == pytest.approx(ordered)


# ----------------------------------------------------------------------
# Desiderata
# ----------------------------------------------------------------------
@given(xs=st.tuples(grades, grades, grades))
def test_d1_equal_weights_reduce_to_unweighted(xs):
    value = weighted_score(tnorms.MIN, uniform_weighting(3), xs)
    assert value == pytest.approx(min(xs), abs=1e-9)


@given(theta=ordered_weightings(2), xs=st.tuples(grades, grades))
def test_d2_zero_weight_argument_drops(theta, xs):
    padded_theta = (theta[0], theta[1], 0.0)
    padded_xs = (xs[0], xs[1], 0.123)
    with_zero = weighted_score(tnorms.MIN, padded_theta, padded_xs)
    without = weighted_score(tnorms.MIN, theta, xs)
    assert with_zero == pytest.approx(without, abs=1e-9)


def test_d3_continuity_in_weights():
    xs = (0.9, 0.4)
    base = weighted_score(tnorms.MIN, (0.6, 0.4), xs)
    for epsilon in (1e-3, 1e-5, 1e-7):
        nearby = weighted_score(
            tnorms.MIN, (0.6 + epsilon, 0.4 - epsilon), xs
        )
        assert abs(nearby - base) < 10 * epsilon + 1e-9


@pytest.mark.parametrize(
    "rule", [tnorms.MIN, tnorms.PRODUCT, means.MEAN, means.GEOMETRIC_MEAN],
    ids=lambda r: r.name,
)
def test_d3prime_local_linearity(rule):
    assert check_local_linearity(rule, arity=3)


def test_equal_middle_weights_are_well_defined():
    """When theta_2 = theta_3 the tied coefficient is 0, so the value
    must not depend on which tied argument enters the prefix."""
    theta = (0.5, 0.25, 0.25)
    a = weighted_score(tnorms.MIN, theta, (0.9, 0.7, 0.2))
    b = weighted_score(tnorms.MIN, (0.5, 0.25, 0.25), (0.9, 0.2, 0.7))
    # Both orders of the tied pair are the same multiset of
    # (weight, grade) pairs, so the values must agree.
    assert a == pytest.approx(b)


# ----------------------------------------------------------------------
# Inheritance (section 5's last claim)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("base", [tnorms.MIN, tnorms.PRODUCT, means.MEAN],
                         ids=lambda r: r.name)
def test_weighted_inherits_monotonicity_and_strictness(base):
    weighted = WeightedScoring(base, (0.5, 0.3, 0.2))
    assert weighted.is_monotone
    assert weighted.is_strict
    assert check_monotonicity(weighted, arity=3)
    assert check_strictness(weighted, arity=3)


def test_weighted_with_zero_weight_is_not_strict():
    weighted = WeightedScoring(tnorms.MIN, (0.7, 0.3, 0.0))
    assert not weighted.is_strict
    # Witness: the zero-weight argument can be 0 while the value is 1.
    assert weighted((1.0, 1.0, 0.0)) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Validation and helpers
# ----------------------------------------------------------------------
def test_validate_weighting_normalizes_drift():
    theta = validate_weighting((0.3333333, 0.3333333, 0.3333334))
    assert sum(theta) == pytest.approx(1.0)


def test_validate_weighting_rejects_bad_input():
    with pytest.raises(WeightingError):
        validate_weighting(())
    with pytest.raises(WeightingError):
        validate_weighting((0.5, -0.5, 1.0))
    with pytest.raises(WeightingError):
        validate_weighting((0.5, 0.2))  # sums to 0.7


def test_arity_mismatch_rejected():
    with pytest.raises(WeightingError):
        weighted_score(tnorms.MIN, (0.5, 0.5), (0.1, 0.2, 0.3))


def test_mixture_validates_coefficient():
    with pytest.raises(WeightingError):
        mixture((0.5, 0.5), (0.7, 0.3), 1.5)


def test_mixture_midpoint():
    mixed = mixture((1.0, 0.0), (0.0, 1.0), 0.5)
    assert mixed == pytest.approx((0.5, 0.5))


def test_uniform_weighting():
    assert uniform_weighting(4) == pytest.approx((0.25,) * 4)
    with pytest.raises(WeightingError):
        uniform_weighting(0)
