"""T-norm catalog: every member satisfies the section-3 axioms."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import GradeError, ScoringError
from repro.scoring import tnorms
from repro.scoring.properties import audit_tnorm

CATALOG = tnorms.tnorm_catalog()

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@pytest.mark.parametrize("rule", CATALOG, ids=lambda r: r.name)
def test_catalog_members_are_tnorms(rule):
    report = audit_tnorm(rule)
    assert report.is_tnorm, (
        f"{rule.name} failed: "
        f"{[r for r in (report.conservation, report.monotonicity, report.commutativity, report.associativity) if not r]}"
    )


@pytest.mark.parametrize("rule", CATALOG, ids=lambda r: r.name)
def test_catalog_members_are_strict(rule):
    report = audit_tnorm(rule)
    assert report.strictness


@pytest.mark.parametrize("rule", CATALOG, ids=lambda r: r.name)
@given(a=grades, b=grades)
def test_dominated_by_min(rule, a, b):
    """Every t-norm is pointwise at most min (a standard consequence)."""
    assert rule((a, b)) <= min(a, b) + 1e-12


@pytest.mark.parametrize("rule", CATALOG, ids=lambda r: r.name)
@given(a=grades)
def test_one_is_identity(rule, a):
    assert rule((a, 1.0)) == pytest.approx(a, abs=1e-9)
    assert rule((1.0, a)) == pytest.approx(a, abs=1e-9)


def test_min_exact_values():
    assert tnorms.MIN((0.3, 0.7)) == 0.3
    assert tnorms.MIN((0.7, 0.3, 0.5)) == 0.3


def test_product_exact_values():
    assert tnorms.PRODUCT((0.5, 0.5)) == 0.25
    assert tnorms.PRODUCT((0.5, 0.5, 0.5)) == 0.125


def test_lukasiewicz_exact_values():
    assert tnorms.LUKASIEWICZ((0.7, 0.5)) == pytest.approx(0.2)
    assert tnorms.LUKASIEWICZ((0.3, 0.3)) == 0.0


def test_drastic_annihilates_off_boundary():
    assert tnorms.DRASTIC((0.9, 0.9)) == 0.0
    assert tnorms.DRASTIC((0.9, 1.0)) == 0.9


def test_drastic_is_smallest_tnorm():
    for rule in CATALOG:
        for a, b in ((0.2, 0.9), (0.5, 0.5), (0.99, 0.99)):
            assert tnorms.DRASTIC((a, b)) <= rule((a, b)) + 1e-12


def test_hamacher_p1_equals_product():
    rule = tnorms.HamacherTNorm(1.0)
    for a, b in ((0.2, 0.9), (0.5, 0.5), (0.0, 0.7)):
        assert rule((a, b)) == pytest.approx(a * b)


def test_yager_w1_equals_lukasiewicz():
    rule = tnorms.YagerTNorm(1.0)
    for a, b in ((0.2, 0.9), (0.8, 0.7), (0.3, 0.3)):
        assert rule((a, b)) == pytest.approx(tnorms.LUKASIEWICZ((a, b)), abs=1e-12)


def test_yager_large_w_approaches_min():
    rule = tnorms.YagerTNorm(50.0)
    assert rule((0.4, 0.8)) == pytest.approx(0.4, abs=0.01)


def test_frank_limits_bracket_product():
    # Frank family is decreasing in s between min (s->0) and Lukasiewicz
    # (s->inf); product sits at s -> 1.
    near_one = tnorms.FrankTNorm(1.0001)
    assert near_one((0.4, 0.6)) == pytest.approx(0.24, abs=1e-3)


def test_schweizer_sklar_p1_is_lukasiewicz():
    rule = tnorms.SchweizerSklarTNorm(1.0)
    for a, b in ((0.9, 0.8), (0.4, 0.4)):
        assert rule((a, b)) == pytest.approx(tnorms.LUKASIEWICZ((a, b)))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        tnorms.HamacherTNorm(-1.0)
    with pytest.raises(ValueError):
        tnorms.YagerTNorm(0.0)
    with pytest.raises(ValueError):
        tnorms.FrankTNorm(1.0)
    with pytest.raises(ValueError):
        tnorms.SchweizerSklarTNorm(0.0)


def test_out_of_range_grades_rejected():
    with pytest.raises(GradeError):
        tnorms.MIN((0.5, 1.5))
    with pytest.raises(GradeError):
        tnorms.MIN((-0.1, 0.5))


def test_empty_tuple_rejected():
    with pytest.raises(ScoringError):
        tnorms.MIN(())


def test_mary_iteration_matches_pairwise_folding():
    rule = tnorms.PRODUCT
    values = (0.9, 0.8, 0.7, 0.6)
    folded = rule.pair(rule.pair(rule.pair(0.9, 0.8), 0.7), 0.6)
    assert rule(values) == pytest.approx(folded)
