"""ScoringFunction plumbing: validation, coercion, metadata."""

import pytest

from repro.errors import GradeError, ScoringError
from repro.scoring.base import (
    BinaryScoringFunction,
    FunctionScoring,
    ScoringFunction,
    as_scoring_function,
)
from repro.scoring.tnorms import MIN


def test_call_validates_inputs_and_output():
    clamps = FunctionScoring(lambda g: 2.0, name="bad-output")
    with pytest.raises(GradeError):
        clamps((0.5, 0.5))


def test_call_rejects_empty():
    with pytest.raises(ScoringError):
        MIN(())


def test_call_rejects_out_of_range():
    with pytest.raises(GradeError):
        MIN((1.5, 0.5))


def test_as_scoring_function_passthrough():
    assert as_scoring_function(MIN) is MIN


def test_as_scoring_function_wraps_callable():
    def my_rule(grades):
        return min(grades)

    wrapped = as_scoring_function(my_rule)
    assert isinstance(wrapped, FunctionScoring)
    assert wrapped.name == "my_rule"
    assert wrapped((0.2, 0.8)) == 0.2


def test_as_scoring_function_rejects_non_callable():
    with pytest.raises(ScoringError):
        as_scoring_function(42)


def test_function_scoring_flags():
    rule = FunctionScoring(
        lambda g: min(g), name="flags", is_monotone=False, is_strict=True,
        is_symmetric=False,
    )
    assert not rule.is_monotone
    assert rule.is_strict
    assert not rule.is_symmetric


def test_binary_scoring_requires_pair_override():
    class Incomplete(BinaryScoringFunction):
        name = "incomplete"

    with pytest.raises(NotImplementedError):
        Incomplete()((0.5, 0.5))


def test_repr_mentions_name():
    assert "min" in repr(MIN)


def test_single_argument_is_identity_for_binary_rules():
    assert MIN((0.42,)) == pytest.approx(0.42)
