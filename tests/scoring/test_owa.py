"""OWA operators and the section-5 weighted-mean identity."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import WeightingError
from repro.scoring import means
from repro.scoring.owa import (
    OwaScoring,
    fagin_wimmers_owa_weights,
    owa_max,
    owa_mean,
    owa_min,
)
from repro.scoring.properties import check_monotonicity, check_strictness
from repro.scoring.weighted import weighted_score

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def ordered_weightings(m):
    return (
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=m,
            max_size=m,
        )
        .map(lambda ws: sorted(ws, reverse=True))
        .map(lambda ws: tuple(w / sum(ws) for w in ws))
    )


@given(a=grades, b=grades, c=grades)
def test_special_vectors_recover_min_max_mean(a, b, c):
    xs = (a, b, c)
    assert owa_min(3)(xs) == pytest.approx(min(xs))
    assert owa_max(3)(xs) == pytest.approx(max(xs))
    assert owa_mean(3)(xs) == pytest.approx(sum(xs) / 3)


def test_owa_is_monotone_and_strictness_tracks_last_weight():
    strict = OwaScoring((0.5, 0.3, 0.2))
    assert check_monotonicity(strict, arity=3)
    assert check_strictness(strict, arity=3)
    loose = OwaScoring((0.7, 0.3, 0.0))
    assert check_monotonicity(loose, arity=3)
    assert not loose.is_strict
    assert loose((1.0, 1.0, 0.0)) == pytest.approx(1.0)


def test_owa_arity_mismatch():
    with pytest.raises(WeightingError):
        OwaScoring((0.5, 0.5))((0.1, 0.2, 0.3))


def test_owa_between_min_and_max():
    rule = OwaScoring((0.2, 0.5, 0.3))
    for xs in ((0.9, 0.1, 0.5), (0.3, 0.3, 0.3), (1.0, 0.0, 0.5)):
        assert min(xs) - 1e-9 <= rule(xs) <= max(xs) + 1e-9


def test_fagin_wimmers_weights_equal_theta():
    """The derivation: the weighted mean's OWA weights are theta itself."""
    theta = (0.5, 0.3, 0.2)
    assert fagin_wimmers_owa_weights(theta) == pytest.approx(theta)


def test_fagin_wimmers_requires_ordered_theta():
    with pytest.raises(WeightingError):
        fagin_wimmers_owa_weights((0.2, 0.8))


@given(theta=ordered_weightings(3), xs=st.tuples(grades, grades, grades))
def test_weighted_mean_is_an_owa_operator(theta, xs):
    """Section 5 meets Yager: f_Theta(mean) applied to weight-ordered
    arguments equals OWA_theta of the same tuple.

    weighted_score sorts (weight, grade) pairs jointly; with symmetric
    inputs we order xs manually to pin the correspondence.
    """
    owa = OwaScoring(fagin_wimmers_owa_weights(theta))
    # weighted mean assigns theta_i to x_i (both already ordered here)
    via_fw = weighted_score(means.MEAN, theta, xs)
    # the OWA form applies theta to the same arguments in THETA order,
    # i.e. exactly sum theta_i * x_i for our ordered call
    expected = sum(t * x for t, x in zip(theta, xs))
    assert via_fw == pytest.approx(expected, abs=1e-9)
    # and the OWA operator applied to xs sorted descending realizes the
    # same functional when xs arrive weight-ordered and desc-sorted
    ordered_xs = tuple(sorted(xs, reverse=True))
    assert owa(ordered_xs) == pytest.approx(
        sum(t * x for t, x in zip(theta, ordered_xs)), abs=1e-9
    )
