"""Hammer tests: no lost updates in the components workers share.

Each test drives one shared component from N threads through a start
barrier (maximal contention) and asserts *exact* totals afterwards — a
single lost increment fails the test.  Sizes are tuned so a data race
has many thousands of chances per run while the suite stays fast.
"""

import threading

import pytest

from repro.core.graded import GradedItem
from repro.core.sources import GradedSource
from repro.errors import CircuitOpenError, TransientAccessError
from repro.middleware.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilientSource,
    RetryPolicy,
    VirtualClock,
)
from repro.observability import MetricsRegistry, QueryTracer

THREADS = 8
ROUNDS = 400


def hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on N threads behind a start barrier."""
    barrier = threading.Barrier(threads)
    errors = []

    def body(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    pool = [threading.Thread(target=body, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=30)
        assert not thread.is_alive(), "hammer thread hung"
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------
def test_counter_increments_are_exact_under_contention():
    registry = MetricsRegistry()

    def worker(index):
        counter = registry.counter("hits", source="shared")
        for _ in range(ROUNDS):
            counter.inc()
        registry.counter("hits", source=f"own{index}").inc(ROUNDS)

    hammer(worker)
    assert registry.counter("hits", source="shared").value == THREADS * ROUNDS
    assert registry.counter_total("hits") == 2 * THREADS * ROUNDS


def test_concurrent_instrument_creation_yields_one_instance():
    registry = MetricsRegistry()
    seen = []
    lock = threading.Lock()

    def worker(index):
        counter = registry.counter("created", kind="same")
        with lock:
            seen.append(counter)
        counter.inc()

    hammer(worker)
    assert len({id(c) for c in seen}) == 1
    assert registry.counter("created", kind="same").value == THREADS


def test_histogram_and_series_totals_are_exact():
    registry = MetricsRegistry()

    def worker(index):
        histogram = registry.histogram("latency")
        series = registry.series("tau")
        for i in range(ROUNDS):
            histogram.observe(1.0)
            series.append(index * ROUNDS + i, 0.5)

    hammer(worker)
    snapshot = registry.histogram("latency").as_dict()
    assert snapshot["count"] == THREADS * ROUNDS
    assert snapshot["sum"] == float(THREADS * ROUNDS)
    assert snapshot["min"] == snapshot["max"] == 1.0
    assert len(registry.series("tau").points) == THREADS * ROUNDS


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
def test_breaker_open_count_is_exact_with_no_successes():
    """With only failures, every threshold-th report past the first trip
    re-opens: opens == total_failures - threshold + 1, exactly."""
    threshold = 5
    breaker = CircuitBreaker(threshold, recovery_time=1e9, clock=VirtualClock())

    def worker(index):
        for _ in range(ROUNDS):
            breaker.record_failure()

    hammer(worker)
    total = THREADS * ROUNDS
    assert breaker.opens == total - threshold + 1
    assert breaker.state == CircuitBreaker.OPEN


def test_breaker_trip_is_reported_exactly_once():
    """record_failure returns True for exactly one of N racing reports."""
    for _ in range(20):
        breaker = CircuitBreaker(
            THREADS, recovery_time=1e9, clock=VirtualClock()
        )
        tripped = []
        lock = threading.Lock()

        def worker(index):
            if breaker.record_failure():
                with lock:
                    tripped.append(index)

        hammer(worker)
        assert len(tripped) == 1
        assert breaker.opens == 1


# ---------------------------------------------------------------------------
# ResilientSource
# ---------------------------------------------------------------------------
class AlwaysTransientSource(GradedSource):
    """Every charged access fails transiently, forever."""

    def __init__(self):
        super().__init__("always-down")

    def _grade_of(self, object_id):
        raise TransientAccessError("down")

    def _item_at(self, index):
        raise TransientAccessError("down")

    def _peek_at(self, index):
        return GradedItem("x", 1.0)

    def __len__(self):
        return 1


def test_resilient_stats_are_exact_under_contention():
    attempts = 3
    source = ResilientSource(
        AlwaysTransientSource(),
        ResiliencePolicy(
            retry=RetryPolicy(max_attempts=attempts, base_delay=0.01),
            failure_threshold=10**9,  # never trips: isolate the tallies
        ),
    )

    calls = 50

    def worker(index):
        for _ in range(calls):
            with pytest.raises(TransientAccessError):
                source.random_access("x")

    hammer(worker)
    total_calls = THREADS * calls
    assert source.stats.failures == total_calls * attempts
    assert source.stats.exhausted == total_calls
    assert source.stats.retries == total_calls * (attempts - 1)
    assert source.stats.rejections == 0
    assert source.counter.random_accesses == 0  # failures charge nothing


def test_resilient_breaker_transitions_are_exact_under_contention():
    """Every call is accounted for, and the breaker's bookkeeping obeys
    its exact invariants even while N threads race past ``allow()``.

    Threads already past the admission check when the breaker trips
    still record their in-flight failures (each re-opens the circuit),
    so ``failures`` may exceed the threshold by up to THREADS - 1 — but
    never silently: opens == failures - threshold + 1 must hold exactly,
    and every open must have been announced exactly once.
    """
    threshold = 4
    source = ResilientSource(
        AlwaysTransientSource(),
        ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1),  # one failure per call
            failure_threshold=threshold,
            recovery_time=1e9,
        ),
    )
    announcements = []
    lock = threading.Lock()

    def observe(kind, detail):
        if kind == "circuit_open":
            with lock:
                announcements.append(detail)

    source.observer = observe
    calls = 100

    def worker(index):
        for _ in range(calls):
            with pytest.raises((TransientAccessError, CircuitOpenError)):
                source.random_access("x")

    hammer(worker)
    total_calls = THREADS * calls
    failures = source.stats.failures
    assert failures + source.stats.rejections == total_calls
    assert threshold <= failures <= threshold + THREADS - 1
    assert source.stats.exhausted == failures  # one attempt per call
    assert source.random_breaker.opens == failures - threshold + 1
    assert len(announcements) == source.random_breaker.opens
    assert source.random_breaker.state == CircuitBreaker.OPEN
    assert source.sorted_breaker.state == CircuitBreaker.CLOSED


# ---------------------------------------------------------------------------
# VirtualClock and QueryTracer
# ---------------------------------------------------------------------------
def test_virtual_clock_sleeps_add_up_exactly():
    clock = VirtualClock()

    def worker(index):
        for _ in range(ROUNDS):
            clock.sleep(0.5)  # exact binary float: sums are exact

    hammer(worker)
    assert clock.now() == THREADS * ROUNDS * 0.5


def test_tracer_steps_stay_contiguous_under_contention():
    tracer = QueryTracer()

    def worker(index):
        for i in range(ROUNDS):
            tracer.record_sorted(f"s{index}", f"o{i}", 0.5, position=i + 1)

    hammer(worker)
    total = THREADS * ROUNDS
    assert len(tracer.events) == total
    assert sorted(e["step"] for e in tracer.events) == list(range(total))
    counts = tracer.access_counts()
    assert all(counts[f"s{i}"] == (ROUNDS, 0) for i in range(THREADS))
