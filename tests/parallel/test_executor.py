"""Unit tests for the round scheduler itself (repro.parallel)."""

import threading

import pytest

from repro.errors import AccessError
from repro.parallel import (
    Outcome,
    ParallelAccessExecutor,
    fan_out,
    raise_first_error,
)


def test_max_workers_must_be_positive():
    with pytest.raises(ValueError):
        ParallelAccessExecutor(0)
    with pytest.raises(ValueError):
        ParallelAccessExecutor(-3)


def test_serial_executor_is_not_parallel_and_builds_no_pool():
    executor = ParallelAccessExecutor(1)
    assert not executor.parallel
    outcomes = executor.run([lambda: 1, lambda: 2, lambda: 3])
    assert [o.value for o in outcomes] == [1, 2, 3]
    assert executor._pool is None


def test_outcomes_come_back_in_submission_order():
    gate = threading.Event()

    def slow():
        gate.wait(timeout=5)
        return "slow"

    def fast():
        gate.set()
        return "fast"

    with ParallelAccessExecutor(2) as executor:
        outcomes = executor.run([slow, fast])
    # The slow thunk finished last but is still reported first.
    assert [o.value for o in outcomes] == ["slow", "fast"]


def test_parallel_fan_out_actually_overlaps():
    barrier = threading.Barrier(3, timeout=5)

    def rendezvous():
        barrier.wait()
        return threading.current_thread().name

    with ParallelAccessExecutor(3) as executor:
        outcomes = executor.run([rendezvous] * 3)
    names = {o.value for o in outcomes}
    # The barrier can only be crossed if all three ran concurrently.
    assert len(names) == 3


def test_errors_are_captured_per_thunk_not_raised():
    boom = AccessError("boom")

    def fail():
        raise boom

    for workers in (1, 4):
        with ParallelAccessExecutor(workers) as executor:
            outcomes = executor.run([lambda: "ok", fail, lambda: "also ok"])
        assert outcomes[0].ok and outcomes[0].value == "ok"
        assert outcomes[1].error is boom and not outcomes[1].ok
        assert outcomes[2].ok and outcomes[2].value == "also ok"
        with pytest.raises(AccessError):
            raise_first_error(outcomes)


def test_serial_stop_on_error_skips_the_rest():
    ran = []

    def make(i):
        def thunk():
            ran.append(i)
            if i == 1:
                raise AccessError("dead")
            return i

        return thunk

    outcomes = fan_out(None, [make(i) for i in range(4)], stop_on_error=True)
    assert ran == [0, 1]
    assert outcomes[0].ok
    assert isinstance(outcomes[1].error, AccessError)
    assert not outcomes[2].ran and not outcomes[3].ran
    assert repr(outcomes[2]) == "<Outcome skipped>"


def test_parallel_stop_on_error_runs_everything_but_merge_sees_first():
    ran = []
    lock = threading.Lock()

    def make(i):
        def thunk():
            with lock:
                ran.append(i)
            if i == 1:
                raise AccessError("dead")
            return i

        return thunk

    with ParallelAccessExecutor(4) as executor:
        outcomes = executor.run([make(i) for i in range(4)], stop_on_error=True)
    assert sorted(ran) == [0, 1, 2, 3]
    assert isinstance(outcomes[1].error, AccessError)
    assert outcomes[2].ran and outcomes[3].ran


def test_fan_out_without_executor_is_plain_serial():
    outcomes = fan_out(None, [lambda: 10, lambda: 20])
    assert [o.value for o in outcomes] == [10, 20]
    raise_first_error(outcomes)  # no error -> no raise


def test_single_thunk_runs_inline_even_on_a_parallel_executor():
    executor = ParallelAccessExecutor(8)
    outcomes = executor.run([lambda: threading.current_thread().name])
    assert outcomes[0].value == threading.current_thread().name
    assert executor._pool is None  # never had to spin up
    executor.shutdown()


def test_before_access_hook_sees_submission_indices():
    seen = []
    lock = threading.Lock()

    def hook(index):
        with lock:
            seen.append(index)

    with ParallelAccessExecutor(2, before_access=hook) as executor:
        executor.run([lambda: None] * 5)
    assert sorted(seen) == [0, 1, 2, 3, 4]


def test_hook_exception_becomes_the_thunk_error():
    def hook(index):
        if index == 1:
            raise AccessError("fuzzed")

    executor = ParallelAccessExecutor(1, before_access=hook)
    outcomes = executor.run([lambda: "a", lambda: "b"])
    assert outcomes[0].ok
    assert isinstance(outcomes[1].error, AccessError)


def test_shutdown_is_idempotent_and_executor_reusable():
    executor = ParallelAccessExecutor(2)
    assert [o.value for o in executor.run([lambda: 1, lambda: 2])] == [1, 2]
    executor.shutdown()
    executor.shutdown()
    # A fresh pool is created lazily on the next parallel run.
    assert [o.value for o in executor.run([lambda: 3, lambda: 4])] == [3, 4]
    executor.shutdown()


def test_outcome_repr_and_ok():
    assert "value=5" in repr(Outcome(5))
    failed = Outcome(None, AccessError("x"))
    assert not failed.ok
    assert "error=" in repr(failed)
