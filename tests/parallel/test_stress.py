"""Concurrency stress: faults + fuzzed interleavings, exactness, no hang.

Each iteration builds a seeded database, wraps every source in the
chaos stack (FaultInjectingSource under ResilientSource, retries deep
enough to outlast any failure streak), and runs TA / A0 / NRA with a
parallel executor whose ``before_access`` hook injects seeded jitter —
randomizing which worker wins each race on every iteration.  The
assertion is the resilience layer's theorem, now under concurrency:
answers match the fault-free oracle's grade multiset exactly, and the
run terminates (pytest-timeout in CI, plus ``faulthandler_timeout`` so
a wedged run dumps every thread's stack before dying).

50 seeded iterations are the acceptance floor; the whole sweep stays
fast because the virtual clock absorbs latency spikes and backoff.
"""

import random
import threading
import time

import pytest

from repro.core.fagin import fagin_top_k
from repro.core.naive import grade_everything
from repro.core.sources import sources_from_columns
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.resilience import (
    ResiliencePolicy,
    ResilientSource,
    RetryPolicy,
    VirtualClock,
)
from repro.parallel import ParallelAccessExecutor
from repro.scoring import tnorms

pytestmark = pytest.mark.timeout(120)

N = 36
M = 3
K = 7
WORKERS = 4

#: faults on every front, but streaks capped below the retry budget, so
#: exactness is a theorem, not a likelihood
PROFILE_KW = dict(
    transient_rate=0.3,
    max_consecutive=2,
    latency_rate=0.2,
    latency=0.05,
)
POLICY = ResiliencePolicy(
    retry=RetryPolicy(max_attempts=4, base_delay=0.01, deadline=None),
    failure_threshold=50,  # streaks of 2 never trip it
)


def build_table(seed):
    rng = random.Random(seed)
    levels = [round(i / 8, 3) for i in range(9)]
    return {
        f"o{i:02d}": tuple(rng.choice(levels) for _ in range(M))
        for i in range(N)
    }


def chaos_sources(table, seed):
    clock = VirtualClock()
    sources = []
    for inner in sources_from_columns(table, backend="list"):
        faulty = FaultInjectingSource(
            inner, FaultProfile(seed=seed, **PROFILE_KW), clock=clock
        )
        sources.append(ResilientSource(faulty, POLICY, clock=clock))
    return sources


def jitter_hook(seed):
    """Seeded per-fan-out jitter: shuffles worker interleavings without
    ever blocking on a partner (tiny real sleeps, no barriers — a
    barrier with more parties than workers would deadlock by design)."""
    rng = random.Random(seed)
    lock = threading.Lock()

    def hook(index):
        with lock:
            delay = rng.random() * 0.002
        time.sleep(delay)

    return hook


ALGORITHMS = (
    ("ta", threshold_top_k),
    ("a0", fagin_top_k),
    ("nra", nra_top_k),
)


@pytest.mark.parametrize("seed", range(50))
def test_parallel_chaos_is_exact_and_terminates(seed):
    table = build_table(seed)
    expected = grade_everything(
        sources_from_columns(table, backend="list"), tnorms.MIN
    ).top(K)
    algorithm_name, runner = ALGORITHMS[seed % len(ALGORITHMS)]
    with ParallelAccessExecutor(
        WORKERS, before_access=jitter_hook(seed)
    ) as executor:
        result = runner(
            chaos_sources(table, seed), tnorms.MIN, K, executor=executor
        )
    assert result.answers.same_grade_multiset(expected), (
        f"{algorithm_name} lost exactness under chaos (seed={seed}): "
        f"{result.answers.as_dict()} != {expected.as_dict()}"
    )
    assert result.degraded is None  # retries absorbed every fault


@pytest.mark.parametrize("seed", range(6))
def test_parallel_chaos_run_is_repeatable(seed):
    """Same seed, same faults, same answers — concurrency included."""

    def run():
        with ParallelAccessExecutor(
            WORKERS, before_access=jitter_hook(seed)
        ) as executor:
            result = threshold_top_k(
                chaos_sources(build_table(seed), seed),
                tnorms.MIN,
                K,
                executor=executor,
            )
        return list(result.answers.as_dict().items())

    assert run() == run()


def test_fuzzed_hook_failures_do_not_hang_the_fan_out():
    """A hook that raises mid-round surfaces as an access error (here on
    sources without degradation support), never as a deadlock."""
    table = build_table(99)
    calls = {"n": 0}
    lock = threading.Lock()

    def flaky_hook(index):
        with lock:
            calls["n"] += 1
            if calls["n"] % 7 == 0:
                raise RuntimeError("fuzzed hook failure")

    with ParallelAccessExecutor(WORKERS, before_access=flaky_hook) as executor:
        with pytest.raises(RuntimeError):
            threshold_top_k(
                sources_from_columns(table, backend="list"),
                tnorms.MIN,
                K,
                executor=executor,
            )
