"""Parallelism through the middleware engine and the CLI."""

import random

import pytest

from repro.core.query import Atomic
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.faults import FaultProfile
from repro.middleware.idmap import IdMapping
from repro.middleware.list_subsystem import ListSubsystem
from repro.middleware.resilience import ResiliencePolicy
from repro.parallel import ParallelAccessExecutor

N = 80
QUERY = Atomic("Shape", "round") & Atomic("Color", "red")


def build_engine(**engine_kwargs):
    rng = random.Random(5)
    shapes = ListSubsystem("shapes")
    shapes.add_list("Shape", "round", {f"g{i}": rng.random() for i in range(N)})
    colors = ListSubsystem("qbic")
    colors.add_list("Color", "red", {f"local{i}": rng.random() for i in range(N)})
    mapping = IdMapping({f"g{i}": f"local{i}" for i in range(N)})
    engine = MiddlewareEngine(**engine_kwargs)
    engine.register(shapes)
    engine.register(colors, id_mapping=mapping)
    return engine


def observable(result):
    return (
        [(item.object_id, item.grade) for item in result.answers],
        result.cost,
        result.algorithm,
        result.sorted_depth,
    )


def test_configure_parallelism_returns_identical_results():
    serial = build_engine().top_k(QUERY, 10)
    engine = build_engine()
    executor = engine.configure_parallelism(4)
    assert isinstance(executor, ParallelAccessExecutor)
    assert engine.executor is executor
    parallel = engine.top_k(QUERY, 10)
    assert observable(parallel) == observable(serial)
    engine.configure_parallelism(None)
    assert engine.executor is None


def test_per_query_max_workers_override():
    serial = build_engine().top_k(QUERY, 10)
    engine = build_engine()
    assert engine.executor is None
    parallel = engine.top_k(QUERY, 10, max_workers=4)
    assert observable(parallel) == observable(serial)
    assert engine.executor is None  # the override was transient


def test_reconfiguring_replaces_the_executor():
    engine = build_engine()
    first = engine.configure_parallelism(2)
    second = engine.configure_parallelism(8)
    assert second is not first
    assert second.max_workers == 8
    engine.configure_parallelism(None)


def test_parallel_engine_with_chaos_stack_matches_clean_answers():
    clean = build_engine().top_k(QUERY, 10)
    engine = build_engine(
        fault_profile=FaultProfile(transient_rate=0.3, seed=11),
        resilience=ResiliencePolicy(),
    )
    engine.configure_parallelism(4)
    try:
        chaotic = engine.top_k(QUERY, 10)
    finally:
        engine.configure_parallelism(None)
    assert [(i.object_id, i.grade) for i in chaotic.answers] == [
        (i.object_id, i.grade) for i in clean.answers
    ]
    assert chaotic.degraded is None


def test_open_query_handle_uses_the_session_executor():
    serial_handle = build_engine().open_query(QUERY)
    engine = build_engine()
    engine.configure_parallelism(4)
    try:
        handle = engine.open_query(QUERY)
        for _ in range(3):
            expected = serial_handle.fetch(5)
            got = handle.fetch(5)
            assert observable(got) == observable(expected)
    finally:
        engine.configure_parallelism(None)


def test_traced_parallel_query_produces_the_serial_timeline():
    from repro.observability import QueryTracer

    serial_tracer = QueryTracer()
    serial = build_engine().top_k(QUERY, 10, tracer=serial_tracer)
    engine = build_engine()
    engine.configure_parallelism(8)
    parallel_tracer = QueryTracer()
    try:
        parallel = engine.top_k(QUERY, 10, tracer=parallel_tracer)
    finally:
        engine.configure_parallelism(None)
    assert observable(parallel) == observable(serial)
    assert parallel_tracer.to_json() == serial_tracer.to_json()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_parses_max_workers():
    from repro.cli import build_parser

    args = build_parser().parse_args(["demo", "--max-workers", "4"])
    assert args.max_workers == 4
    args = build_parser().parse_args(["demo"])
    assert args.max_workers is None


def test_cli_demo_output_is_identical_with_and_without_workers(capsys):
    from repro.cli import main

    assert main(["demo", "-k", "3"]) == 0
    serial_output = capsys.readouterr().out
    assert main(["demo", "-k", "3", "--max-workers", "4"]) == 0
    parallel_output = capsys.readouterr().out
    assert parallel_output == serial_output


def test_cli_rejects_nonpositive_workers():
    from repro.cli import main

    with pytest.raises(ValueError):
        main(["demo", "-k", "3", "--max-workers", "0"])
