"""Differential conformance: parallel execution is byte-identical to serial.

The determinism contract of :mod:`repro.parallel` is stronger than
"same answers": for every algorithm, every scoring function, and every
worker count, a parallel run must return the *identical ordered
answers*, the *identical cost report*, and a *byte-identical trace
timeline* — fan-out may only change wall-clock time, never anything an
observer can record.  Hypothesis drives random databases (dense with
grade ties) through every algorithm at ``max_workers`` in {1, 2, 8} and
compares against the classic serial path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean_first import boolean_first_top_k
from repro.core.disjunction import disjunction_top_k
from repro.core.fagin import fagin_top_k
from repro.core.naive import naive_top_k
from repro.core.planner import top_k
from repro.core.sources import sources_from_columns
from repro.core.threshold import combined_top_k, nra_top_k, threshold_top_k
from repro.observability import QueryTracer, validate_trace
from repro.parallel import ParallelAccessExecutor
from repro.scoring import tnorms

from tests.core.test_conformance import (
    boolean_databases,
    graded_databases,
    pick_k,
    pick_rule,
)

WORKER_COUNTS = (1, 2, 8)

ALGORITHMS = (
    ("naive", naive_top_k),
    ("a0", fagin_top_k),
    ("ta", threshold_top_k),
    ("nra", nra_top_k),
    ("ca", combined_top_k),
)


def run_once(table, rule, k, runner, executor):
    sources = sources_from_columns(table, backend="list")
    tracer = QueryTracer()
    result = runner(sources, rule, k, tracer=tracer, executor=executor)
    return result, tracer


def observable_state(result, tracer):
    """Everything the determinism contract covers, as comparable values."""
    return (
        list(result.answers.as_dict().items()),  # ordered answers
        result.cost,  # per-source access tallies
        result.sorted_depth,
        result.algorithm,
        tracer.to_json(),  # the full timeline, byte for byte
    )


@settings(deadline=None, max_examples=25)
@given(
    data=graded_databases(min_m=2),
    rule_index=st.integers(0, 4),
    k_selector=st.integers(0, 2),
)
def test_every_algorithm_is_byte_identical_across_worker_counts(
    data, rule_index, k_selector
):
    table, _ = data
    rule = pick_rule(table, rule_index)
    k = pick_k(table, k_selector)
    for name, runner in ALGORITHMS:
        baseline = observable_state(*run_once(table, rule, k, runner, None))
        validate_trace_of(baseline)
        for workers in WORKER_COUNTS:
            with ParallelAccessExecutor(workers) as executor:
                state = observable_state(
                    *run_once(table, rule, k, runner, executor)
                )
            assert state == baseline, (
                f"{name} diverged from serial at max_workers={workers} "
                f"(rule={rule.name}, k={k}, table={table})"
            )


def validate_trace_of(state):
    import json

    validate_trace(json.loads(state[-1]))


@settings(deadline=None, max_examples=20)
@given(data=graded_databases(min_m=2), k_selector=st.integers(0, 2))
def test_disjunction_is_byte_identical_across_worker_counts(data, k_selector):
    table, _ = data
    k = pick_k(table, k_selector)

    def runner(sources, rule, k, *, tracer, executor):
        return disjunction_top_k(sources, k, tracer=tracer, executor=executor)

    baseline = observable_state(*run_once(table, None, k, runner, None))
    for workers in WORKER_COUNTS:
        with ParallelAccessExecutor(workers) as executor:
            state = observable_state(*run_once(table, None, k, runner, executor))
        assert state == baseline


@settings(deadline=None, max_examples=20)
@given(data=boolean_databases(), k_selector=st.integers(0, 2))
def test_boolean_first_is_byte_identical_across_worker_counts(data, k_selector):
    table, _ = data
    k = pick_k(table, k_selector)

    def runner(sources, rule, k, *, tracer, executor):
        return boolean_first_top_k(
            sources, rule, k, boolean_index=0, tracer=tracer, executor=executor
        )

    baseline = observable_state(*run_once(table, tnorms.MIN, k, runner, None))
    for workers in WORKER_COUNTS:
        with ParallelAccessExecutor(workers) as executor:
            state = observable_state(
                *run_once(table, tnorms.MIN, k, runner, executor)
            )
        assert state == baseline


@settings(deadline=None, max_examples=15)
@given(data=graded_databases(min_m=2), k_selector=st.integers(0, 2))
def test_planner_top_k_is_byte_identical_under_an_executor(data, k_selector):
    """The planner entry point forwards the executor to whatever it picks."""
    table, _ = data
    k = pick_k(table, k_selector)

    def run(executor):
        sources = sources_from_columns(table, backend="list")
        tracer = QueryTracer()
        result = top_k(
            sources, tnorms.MIN, k, tracer=tracer, executor=executor
        )
        return observable_state(result, tracer)

    baseline = run(None)
    with ParallelAccessExecutor(4) as executor:
        assert run(executor) == baseline


def test_one_executor_is_reusable_across_algorithms_and_queries():
    """Session-style reuse: one pool, many queries, still deterministic."""
    table = {f"o{i:02d}": (i / 40.0, 1.0 - i / 40.0, 0.5) for i in range(40)}
    with ParallelAccessExecutor(4) as executor:
        for name, runner in ALGORITHMS:
            for k in (1, 5, 40):
                baseline = observable_state(
                    *run_once(table, tnorms.MIN, k, runner, None)
                )
                state = observable_state(
                    *run_once(table, tnorms.MIN, k, runner, executor)
                )
                assert state == baseline, (name, k)
