"""Sweep / averaging harness."""

import pytest

from repro.harness.runner import Record, average_over_seeds, series, sweep


def test_sweep_covers_cross_product():
    records = sweep(
        {"n": (10, 20), "k": (1, 2, 3)},
        lambda n, k: {"cost": n * k},
    )
    assert len(records) == 6
    assert records[0].params == {"n": 10, "k": 1}
    assert records[-1].metrics == {"cost": 60}


def test_record_value_reads_metrics_then_params():
    record = Record(params={"n": 10}, metrics={"cost": 42.0})
    assert record.value("cost") == 42.0
    assert record.value("n") == 10.0


def test_series_extraction():
    records = sweep({"n": (1, 2, 4)}, lambda n: {"cost": n * 3})
    xs, ys = series(records, "n", "cost")
    assert xs == (1.0, 2.0, 4.0)
    assert ys == (3.0, 6.0, 12.0)


def test_average_over_seeds():
    def experiment(seed, n):
        return {"cost": n + seed}

    averaged = average_over_seeds(experiment, seeds=(0, 2, 4), n=10)
    assert averaged["cost"] == pytest.approx(12.0)


def test_average_requires_seeds():
    with pytest.raises(ValueError):
        average_over_seeds(lambda seed: {}, seeds=())
