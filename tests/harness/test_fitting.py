"""Power-law fitting against the Theorem 4.1/4.2 laws."""

import math

import pytest

from repro.harness.fitting import (
    fit_power_law,
    k_exponent,
    theorem_exponent,
)


def test_exact_power_law_recovered():
    xs = [100, 200, 400, 800]
    ys = [3 * x**0.5 for x in xs]
    fit = fit_power_law(xs, ys)
    assert fit.slope == pytest.approx(0.5)
    assert math.exp(fit.intercept) == pytest.approx(3.0)
    assert fit.r_squared == pytest.approx(1.0)


def test_linear_law_slope_one():
    xs = [10, 100, 1000]
    fit = fit_power_law(xs, [2 * x for x in xs])
    assert fit.slope == pytest.approx(1.0)


def test_noisy_fit_reports_lower_r_squared():
    xs = [10, 20, 40, 80, 160]
    ys = [x**0.5 * (1.3 if i % 2 else 0.7) for i, x in enumerate(xs)]
    fit = fit_power_law(xs, ys)
    assert fit.r_squared < 1.0
    assert 0.2 < fit.slope < 0.8


def test_predict():
    fit = fit_power_law([1, 10, 100], [2, 20, 200])
    assert fit.predict(50) == pytest.approx(100.0)


def test_validation():
    with pytest.raises(ValueError):
        fit_power_law([1], [1])
    with pytest.raises(ValueError):
        fit_power_law([1, 2], [1])
    with pytest.raises(ValueError):
        fit_power_law([0, 2], [1, 2])
    with pytest.raises(ValueError):
        fit_power_law([2, 2], [1, 2])


def test_theorem_exponents():
    assert theorem_exponent(2) == pytest.approx(0.5)
    assert theorem_exponent(3) == pytest.approx(2 / 3)
    assert theorem_exponent(1) == 0.0
    assert k_exponent(2) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        theorem_exponent(0)
    with pytest.raises(ValueError):
        k_exponent(0)
