"""Smoke tests for every experiment function at miniature scale.

The benchmarks run the experiments at full size; these keep the
experiment *code* under fast regression coverage so a refactor cannot
silently break the reproduction harness.
"""


from repro.harness import experiments as ex


def rows_of(result):
    assert result.rows, result.experiment
    assert all(len(row) == len(result.headers) for row in result.rows)
    return result.rows


def test_e1_small():
    result = ex.e1_cost_vs_n(ns=(200, 400), k=3, seeds=(0,))
    rows = rows_of(result)
    assert rows[0][2] == 400  # naive = 2N
    assert "fagin" in result.fits


def test_e2_small():
    result = ex.e2_cost_vs_m(ms=(2,), ns=(200, 400, 800), k=3, seeds=(0,))
    assert rows_of(result)[0][2] == 0.5


def test_e3_small():
    result = ex.e3_cost_vs_k(ks=(1, 8), n=400, seeds=(0,))
    rows = rows_of(result)
    assert rows[0][1] <= rows[1][1]


def test_e4_small():
    for row in rows_of(ex.e4_disjunction(ns=(100,), ms=(2,), k=4)):
        assert row[2] == row[3] == 8
        assert row[4]


def test_e5_small():
    for row in rows_of(ex.e5_scoring_functions(n=300, k=4)):
        assert row[2], row[0]


def test_e6_small():
    for row in rows_of(ex.e6_beatles(ns=(300,), selectivities=(0.01,), k=4)):
        assert row[4] < row[5]


def test_e7_small():
    for row in rows_of(ex.e7_filter(ns=(80,), k=4)):
        assert row[4]  # exact


def test_e8_small():
    result = ex.e8_weighted(n=200, k=4, weightings=((0.7, 0.3),))
    assert rows_of(result)[0][3]


def test_e9_small():
    result = ex.e9_adversary(ns=(100, 200, 400))
    assert result.fits["adversary"].slope > 0.9


def test_e10():
    rows = rows_of(ex.e10_uniqueness())
    assert sum(1 for row in rows if row[1]) == 1


def test_e11_small():
    for row in rows_of(ex.e11_precompute(ns=(40,))):
        assert row[3] == 0


def test_e12_small():
    for row in rows_of(
        ex.e12_ta_ablation(ns=(200,), kinds=("independent",), k=4)
    ):
        assert row[-1]  # agree


def test_e12b_small():
    # A0-beats-naive under skewed charges is an asymptotic claim; at
    # toy sizes the 10x random charge can flip it, so use a moderate N.
    for row in rows_of(ex.e12_cost_model_ablation(n=2000, k=4)):
        assert row[4]  # A0 wins


def test_e13_small():
    rows = rows_of(ex.e13_curse(dims=(2, 4), n=200, k=3, queries=2))
    assert rows[0][0] == 2


def test_e14_small():
    for row in rows_of(ex.e14_filter_condition(n=300, k=4, taus=(0.5,))):
        assert row[4]  # correct


def test_e15_small():
    rows = rows_of(ex.e15_batching(batch_sizes=(1, 50), n=400, k=4))
    assert rows[0][3] <= rows[1][3]  # uniform cost grows with batch


def test_e16_small():
    for row in rows_of(
        ex.e16_pruning(ns=(300,), kinds=("independent",), k=4)
    ):
        assert row[3] <= row[2]
        assert row[6]


def test_e17_small():
    result = ex.e17_concentration(n=400, k=4, trials=10)
    quantiles = dict(result.rows)
    assert quantiles["median"] <= quantiles["max"]


def test_e20_small():
    result = ex.e20_resilience(n=400, k=5, rates=(0.0, 0.3))
    rows = rows_of(result)
    retry_rows = [row for row in rows if row[0] == "retry"]
    assert all(row[-1] for row in retry_rows)  # exact at every rate
    fallback = next(row for row in rows if row[0] == "fallback-on")
    assert fallback[2] == "threshold-ta+nra" and fallback[-1]
    ablated = next(row for row in rows if row[0] == "fallback-off")
    assert ablated[2] == "aborted"
