"""Report formatting."""

from repro.harness.reporting import Comparison, format_table


def test_format_table_alignment():
    table = format_table(
        ("N", "cost"), [(100, 42.0), (1000, 1234.5)]
    )
    lines = table.splitlines()
    assert len(lines) == 4
    assert "N" in lines[0] and "cost" in lines[0]
    assert set(lines[1]) == {"-"}
    assert "1,234" in lines[3] or "1234" in lines[3]


def test_format_table_empty():
    table = format_table(("a", "b"), [])
    assert "a" in table


def test_float_formatting():
    table = format_table(("x",), [(0.123456,), (0.0,)])
    assert "0.123" in table
    assert "\n" in table


def test_comparison_lines():
    good = Comparison("E1", "slope ~ 0.5", "0.5", "0.51", True)
    bad = Comparison("E1", "slope ~ 0.5", "0.5", "0.9", False)
    assert good.line().startswith("[REPRODUCED]")
    assert bad.line().startswith("[DIVERGED]")
    assert "expected 0.5" in good.line()
