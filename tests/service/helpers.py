"""Shared fixtures for the query-service suites.

``build_engine`` makes the standard two-list engine the service tests
query; ``GateSubsystem`` makes one whose every charged access blocks on
an event the test controls — the lever for pinning "queued", "running",
and "shed" states deterministically instead of racing real threads.
"""

import random
import threading

from repro.core.graded import GradedSet
from repro.core.query import Atomic
from repro.core.sources import ListSource
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.interface import Subsystem
from repro.middleware.list_subsystem import ListSubsystem

N = 120
QUERY = Atomic("Color", "red") & Atomic("Shape", "round")


def make_grades(n=N, seed=7):
    rng = random.Random(seed)
    color = {f"img{i}": rng.random() for i in range(n)}
    shape = {f"img{i}": rng.random() for i in range(n)}
    return color, shape


def build_engine(n=N, seed=7, clock=None):
    """Two ranked lists over n objects; QUERY conjoins them."""
    color, shape = make_grades(n, seed)
    engine = MiddlewareEngine(clock=clock)
    subsystem = ListSubsystem("qbic")
    subsystem.add_list("Color", "red", color)
    subsystem.add_list("Shape", "round", shape)
    engine.register(subsystem)
    return engine


class GateSource(ListSource):
    """A ranked list whose charged accesses block until the gate opens."""

    def __init__(self, graded, name, gate, started):
        super().__init__(graded, name=name)
        self._gate = gate
        self._started = started

    def _blocked(self):
        self._started.set()
        if not self._gate.wait(timeout=30.0):
            raise TimeoutError("gate never opened")

    def _item_at(self, index):
        self._blocked()
        return super()._item_at(index)

    def _items_range(self, start, count):
        self._blocked()
        return super()._items_range(start, count)

    def _grade_of(self, object_id):
        self._blocked()
        return super()._grade_of(object_id)

    def _grades_of_many(self, object_ids):
        self._blocked()
        return super()._grades_of_many(object_ids)


class GateSubsystem(Subsystem):
    """One gated list per (attribute, target); open(), and work flows."""

    def __init__(self, name, lists):
        super().__init__(name)
        self._lists = dict(lists)
        self.gate = threading.Event()
        #: set the moment any query first touches a gated access —
        #: "a worker is RUNNING now" without sleeping in the test.
        self.started = threading.Event()

    def attributes(self):
        return frozenset(attribute for attribute, _ in self._lists)

    def supports(self, atom):
        return (atom.attribute, atom.target) in self._lists

    def _bind(self, atom):
        grades = self._lists[(atom.attribute, atom.target)]
        return GateSource(
            GradedSet(grades),
            f"{self.name}:{atom}",
            self.gate,
            self.started,
        )

    def open(self):
        self.gate.set()


def build_gated_engine(n=30, seed=11, clock=None):
    """An engine whose single-list queries block until ``gate.open()``."""
    rng = random.Random(seed)
    grades = {f"img{i}": rng.random() for i in range(n)}
    engine = MiddlewareEngine(clock=clock)
    subsystem = GateSubsystem("gated", {("Color", "red"): grades})
    engine.register(subsystem)
    return engine, subsystem, Atomic("Color", "red")
