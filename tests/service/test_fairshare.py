"""Fair-share executor views over one shared access pool."""

import threading

import pytest

from repro.parallel import ParallelAccessExecutor
from repro.service import FairShareExecutor


def test_cap_bounds_workers_and_parallel_flag():
    shared = ParallelAccessExecutor(4)
    view = FairShareExecutor(shared, cap=2)
    assert view.max_workers == 2
    assert view.parallel
    serial = FairShareExecutor(shared, cap=1)
    assert not serial.parallel
    shared.shutdown()


def test_cap_clamped_to_shared_pool_size():
    shared = ParallelAccessExecutor(2)
    view = FairShareExecutor(shared, cap=16)
    assert view.max_workers == 2
    shared.shutdown()


def test_rejects_bad_cap():
    with pytest.raises(ValueError):
        FairShareExecutor(ParallelAccessExecutor(2), cap=0)


def test_outcomes_in_submission_order():
    shared = ParallelAccessExecutor(4)
    view = FairShareExecutor(shared, cap=2)
    thunks = [lambda i=i: i * 10 for i in range(9)]
    outcomes = view.run(thunks)
    assert [o.value for o in outcomes] == [i * 10 for i in range(9)]
    shared.shutdown()


def test_errors_captured_per_thunk():
    shared = ParallelAccessExecutor(4)
    view = FairShareExecutor(shared, cap=3)

    def boom():
        raise RuntimeError("thunk failed")

    outcomes = view.run([lambda: 1, boom, lambda: 3])
    assert outcomes[0].value == 1
    assert isinstance(outcomes[1].error, RuntimeError)
    assert outcomes[2].value == 3
    shared.shutdown()


def test_wave_submission_never_exceeds_cap():
    """Instantaneous in-flight thunks of one view stay <= its cap."""
    shared = ParallelAccessExecutor(4)
    view = FairShareExecutor(shared, cap=2)
    lock = threading.Lock()
    live = {"now": 0, "peak": 0}
    barrier = threading.Barrier(2, timeout=5.0)

    def tracked():
        with lock:
            live["now"] += 1
            live["peak"] = max(live["peak"], live["now"])
        try:
            # Rendezvous in pairs: proves two run together (the cap is
            # reached) while the peak assertion proves never three.
            barrier.wait()
        finally:
            with lock:
                live["now"] -= 1
        return True

    outcomes = view.run([tracked for _ in range(6)])
    assert all(o.ok for o in outcomes)
    assert live["peak"] == 2
    shared.shutdown()


def test_shutdown_is_noop_for_shared_pool():
    shared = ParallelAccessExecutor(2)
    view = FairShareExecutor(shared, cap=2)
    view.shutdown()
    # The shared pool still works after a view "shutdown".
    assert [o.value for o in shared.run([lambda: 7, lambda: 8])] == [7, 8]
    shared.shutdown()


def test_serial_view_stop_on_error_matches_serial_semantics():
    shared = ParallelAccessExecutor(4)
    view = FairShareExecutor(shared, cap=1)

    def boom():
        raise RuntimeError("no")

    outcomes = view.run([lambda: 1, boom, lambda: 3], stop_on_error=True)
    assert outcomes[0].value == 1
    assert outcomes[1].error is not None
    assert not outcomes[2].ran  # skipped, exactly like the serial loop
    shared.shutdown()
