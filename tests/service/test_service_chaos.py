"""Chaos: the service under injected subsystem faults and overload.

Every ticket must reach a terminal state — faults surface as degraded
results or explicit errors, never hangs — and the no-shed-while-running
invariant holds under fault-lengthened executions.
"""

import pytest

from repro.errors import AdmissionError, ReproError
from repro.middleware.faults import FaultProfile
from repro.middleware.resilience import ResiliencePolicy, RetryPolicy
from repro.service import QueryService, ServiceConfig

from tests.service.helpers import QUERY, build_engine


def chaotic_engine(profile):
    engine = build_engine()
    engine.configure_resilience(
        ResiliencePolicy(retry=RetryPolicy(max_attempts=4, base_delay=0.001)),
        fault_profile=profile,
    )
    return engine


def drain(tickets):
    """Wait out every ticket; returns (results, errors) without hanging."""
    results, errors = [], []
    for ticket in tickets:
        assert ticket.wait(timeout=30), f"ticket {ticket.seq} hung"
        try:
            results.append(ticket.result(timeout=0))
        except (ReproError, AdmissionError) as error:
            errors.append((ticket, error))
    return results, errors


def test_transient_faults_retried_to_clean_answers():
    engine = chaotic_engine(FaultProfile(transient_rate=0.2, seed=3))
    expected = build_engine().top_k(QUERY, 5)
    try:
        with QueryService(engine, ServiceConfig(workers=4)) as service:
            tickets = [service.submit(QUERY, 5) for _ in range(20)]
            results, errors = drain(tickets)
    finally:
        engine.close()
    assert not errors
    # Serially, retries (max_attempts=4) always outlast the fault
    # schedule's max_consecutive=2 streak cap.  But the cap's counter
    # lives on the *shared* source: concurrent queries interleave their
    # draws, so a retry loop can rarely have its forced-success draws
    # absorbed by a neighbour and exhaust its attempts.  That must
    # surface as an explicit degradation — never a silently wrong
    # answer — and stays rare.
    clean = [r for r in results if r.degraded is None]
    assert len(clean) >= len(results) - 2
    for result in clean:
        assert [(i.object_id, i.grade) for i in result.answers] == [
            (i.object_id, i.grade) for i in expected.answers
        ]
    for result in results:
        if result.degraded is not None:
            assert result.degraded.fallback


def test_dying_source_degrades_but_terminates():
    engine = chaotic_engine(FaultProfile(kill_after=200, seed=5))
    try:
        with QueryService(engine, ServiceConfig(workers=3)) as service:
            tickets = [service.submit(QUERY, 5) for _ in range(15)]
            results, errors = drain(tickets)
    finally:
        engine.close()
    # Early queries may finish clean; once the source dies, queries
    # come back degraded (partial bounds) or as explicit errors — but
    # every single one terminates.
    assert len(results) + len(errors) == 15
    late = results[-1] if results else None
    stats = service.stats()
    assert stats["completed"] + stats["failed"] == 15
    if late is not None and late.degraded is not None:
        assert late.degraded.complete is False or late.degraded.fallback


def test_chaos_with_overload_never_sheds_running():
    engine = chaotic_engine(
        FaultProfile(transient_rate=0.15, latency_rate=0.3, latency=0.05, seed=9)
    )
    config = ServiceConfig(workers=2, queue_depth=3)
    admitted, refused = [], 0
    try:
        with QueryService(engine, config) as service:
            for index in range(30):
                try:
                    admitted.append(
                        service.submit(QUERY, 5, priority=index % 3)
                    )
                except AdmissionError:
                    refused += 1
            results, errors = drain(admitted)
    finally:
        engine.close()
    shed = [t for t, e in errors if t.status == "shed"]
    for ticket in shed:
        assert ticket.started_at is None, (
            f"ticket {ticket.seq} was shed after it started running"
        )
    assert len(results) + len(errors) == len(admitted)
    assert len(admitted) + refused == 30


def test_deadline_under_chaos_degrades_within_budget():
    """Latency faults burn the virtual budget; queries degrade, not hang."""
    from repro.middleware.resilience import VirtualClock

    clock = VirtualClock()
    engine = build_engine(clock=clock)
    engine.configure_resilience(
        None,
        fault_profile=FaultProfile(latency_rate=1.0, latency=0.5, seed=1),
    )
    try:
        with QueryService(engine, clock=clock) as service:
            # Every access stalls the virtual clock 0.5s; a 2s budget is
            # exhausted after a handful of accesses and the guard trips.
            result = service.query(QUERY, 5, deadline=2.0, timeout=30)
    finally:
        engine.close()
    assert result.degraded is not None
    assert result.degraded.fallback in ("partial-bounds", "nra-sorted-only")
    assert result.cost.database_access_cost > 0  # it did start
    assert service.metrics.counter_total("service.degraded") == 1


def test_faulty_and_clean_tenants_coexist():
    """One tenant's chaos (on its own atom) cannot corrupt another's answers."""
    engine = chaotic_engine(FaultProfile(transient_rate=0.25, seed=13))
    expected = build_engine().top_k(QUERY, 4)
    try:
        with QueryService(engine, ServiceConfig(workers=4)) as service:
            tickets = [
                service.submit(QUERY, 4, tenant=("a" if i % 2 else "b"))
                for i in range(16)
            ]
            results, errors = drain(tickets)
    finally:
        engine.close()
    assert not errors
    # As above: concurrent draws on the shared schedule can rarely
    # exhaust one query's retries into an explicit degradation; every
    # non-degraded answer must be exact for both tenants.
    clean = [r for r in results if r.degraded is None]
    assert len(clean) >= len(results) - 2
    for result in clean:
        assert [(i.object_id, i.grade) for i in result.answers] == [
            (i.object_id, i.grade) for i in expected.answers
        ]


@pytest.mark.parametrize("workers", [1, 4])
def test_worker_survives_failing_queries(workers):
    """A query that raises does not kill its worker thread."""
    from repro.core.query import Atomic

    engine = build_engine()
    try:
        with QueryService(engine, ServiceConfig(workers=workers)) as service:
            bad = [service.submit(Atomic("Nope", "x"), 3) for _ in range(4)]
            good = [service.submit(QUERY, 3) for _ in range(4)]
            for ticket in bad:
                with pytest.raises(ReproError):
                    ticket.result(timeout=10)
            for ticket in good:
                assert ticket.result(timeout=10).answers
    finally:
        engine.close()
