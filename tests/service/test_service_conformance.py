"""Concurrency conformance: service answers are byte-identical to serial.

The acceptance bar for the serving layer: run 100 queries through a
concurrent QueryService and prove every non-degraded answer equal —
object ids, grades, tie-break order, algorithm choice — to the same
query evaluated serially on a quiet engine.  Exercised across worker
counts, a shared parallel access pool with fair-share caps, and a mix
of distinct queries so concurrent executions genuinely interleave.
"""

import random

import pytest

from repro.core.query import Atomic
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.list_subsystem import ListSubsystem
from repro.service import QueryService, ServiceConfig

QUERIES = 100
N = 300
K = 7


def build_engine():
    rng = random.Random(99)
    engine = MiddlewareEngine()
    subsystem = ListSubsystem("qbic")
    for attribute, target in (
        ("Color", "red"),
        ("Color", "blue"),
        ("Shape", "round"),
        ("Texture", "smooth"),
    ):
        subsystem.add_list(
            attribute, target, {f"img{i}": rng.random() for i in range(N)}
        )
    engine.register(subsystem)
    return engine


def query_mix():
    """A deterministic mix of conjunctions over the four lists."""
    atoms = {
        "cr": Atomic("Color", "red"),
        "cb": Atomic("Color", "blue"),
        "sr": Atomic("Shape", "round"),
        "ts": Atomic("Texture", "smooth"),
    }
    shapes = [
        atoms["cr"] & atoms["sr"],
        atoms["cb"] & atoms["ts"],
        atoms["cr"] & atoms["sr"] & atoms["ts"],
        atoms["cb"] | atoms["sr"],
        atoms["cr"],
    ]
    return [shapes[i % len(shapes)] for i in range(QUERIES)]


def fingerprint(result):
    return (
        result.algorithm,
        result.grades_exact,
        tuple((str(i.object_id), i.grade) for i in result.answers),
    )


@pytest.mark.parametrize(
    "workers,access_workers,fair_share",
    [
        (4, 1, None),  # concurrent queries, serial accesses
        (8, 1, None),  # more workers than queries in flight
        (4, 4, 2),  # shared parallel pool, per-query cap
    ],
)
def test_hundred_concurrent_queries_byte_identical(
    workers, access_workers, fair_share
):
    queries = query_mix()
    serial_engine = build_engine()
    expected = [fingerprint(serial_engine.top_k(q, K)) for q in queries]
    serial_engine.close()

    engine = build_engine()
    config = ServiceConfig(
        workers=workers,
        queue_depth=QUERIES,
        access_workers=access_workers,
        fair_share=fair_share,
    )
    try:
        with QueryService(engine, config) as service:
            tickets = [service.submit(q, K) for q in queries]
            results = [t.result(timeout=60) for t in tickets]
    finally:
        engine.close()

    for index, (result, want) in enumerate(zip(results, expected)):
        assert result.degraded is None, f"query {index} unexpectedly degraded"
        assert fingerprint(result) == want, f"query {index} diverged"


def test_interleaved_submissions_from_many_client_threads():
    """Clients submitting from their own threads see the same answers."""
    import threading

    queries = query_mix()[:40]
    serial_engine = build_engine()
    expected = [fingerprint(serial_engine.top_k(q, K)) for q in queries]
    serial_engine.close()

    engine = build_engine()
    results = [None] * len(queries)
    try:
        with QueryService(
            engine, ServiceConfig(workers=4, queue_depth=len(queries))
        ) as service:

            def client(start):
                for index in range(start, len(queries), 4):
                    results[index] = service.query(
                        queries[index], K, timeout=60
                    )

            threads = [
                threading.Thread(target=client, args=(lane,))
                for lane in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
    finally:
        engine.close()

    for index, (result, want) in enumerate(zip(results, expected)):
        assert result is not None, f"client lane lost query {index}"
        assert fingerprint(result) == want, f"query {index} diverged"
