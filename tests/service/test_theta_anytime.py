"""Anytime θ-approximation under service deadlines and chaos.

The composition the tentpole promises: when a deadline fires *mid-query*
the service returns the current best-k answers carrying a certified
:class:`~repro.core.result.ApproximationCertificate` (``anytime=True``)
instead of a bare partial ``DegradedResult`` — and the zero-cost
expired-in-queue path stays exactly as it was (no engine touch, no
certificate to hand out).  A chaos variant checks that fault injection
plus θ > 1 still certifies soundly against the clean oracle.
"""

from repro.middleware.faults import FaultProfile
from repro.middleware.resilience import VirtualClock
from repro.service import QueryService, ServiceConfig

from tests.service.helpers import N, QUERY, build_engine, make_grades


def true_grades(n=N, seed=7):
    """The clean oracle: min of the two list grades per object."""
    color, shape = make_grades(n, seed)
    return {obj: min(color[obj], shape[obj]) for obj in color}


def assert_certificate_sound(result, truth):
    """The certified ratio must hold on true grades; intervals bracket."""
    certificate = result.approximation
    assert certificate is not None
    returned = {item.object_id for item in result.answers}
    excluded_best = max(
        (grade for obj, grade in truth.items() if obj not in returned),
        default=0.0,
    )
    if certificate.achieved != float("inf"):
        for item in result.answers:
            assert (
                certificate.achieved * truth[item.object_id]
                >= excluded_best - 1e-9
            ), (
                f"certificate ratio {certificate.achieved} disproved by "
                f"{item.object_id} (true {truth[item.object_id]}) vs "
                f"excluded best {excluded_best}"
            )
    if certificate.intervals is not None:
        for obj, (lower, upper) in certificate.intervals.items():
            assert lower - 1e-9 <= truth[obj] <= upper + 1e-9


def test_mid_query_deadline_returns_certified_best_k():
    """A budget burned mid-execution yields best-k plus an anytime bound."""
    clock = VirtualClock()
    engine = build_engine(clock=clock)
    engine.configure_resilience(
        None,
        fault_profile=FaultProfile(latency_rate=1.0, latency=0.5, seed=1),
    )
    try:
        with QueryService(engine, clock=clock) as service:
            result = service.query(QUERY, 5, deadline=2.0, timeout=30)
    finally:
        engine.close()
    assert result.degraded is not None
    assert result.cost.database_access_cost > 0  # it did start
    if result.degraded.fallback == "partial-bounds":
        certificate = result.approximation
        assert certificate is not None
        assert certificate.anytime
        assert_certificate_sound(result, true_grades())


def test_mid_query_deadline_with_theta_keeps_anytime_flag():
    """θ > 1 composes with deadlines: the anytime flag wins over θ-stop."""
    clock = VirtualClock()
    engine = build_engine(clock=clock)
    engine.configure_resilience(
        None,
        fault_profile=FaultProfile(latency_rate=1.0, latency=0.5, seed=1),
    )
    try:
        with QueryService(engine, clock=clock) as service:
            result = service.query(QUERY, 5, deadline=2.0, theta=1.5, timeout=30)
    finally:
        engine.close()
    assert result.degraded is not None
    if result.degraded.fallback == "partial-bounds":
        certificate = result.approximation
        assert certificate is not None
        assert certificate.anytime
        assert certificate.theta == 1.5
        assert_certificate_sound(result, true_grades())


def test_expired_in_queue_stays_zero_cost_and_uncertified():
    """The expired-in-queue fast path is byte-for-byte what it was."""
    engine = build_engine()
    try:
        with QueryService(engine) as service:
            result = service.query(QUERY, 5, deadline=0.0, theta=1.5, timeout=10)
    finally:
        engine.close()
    assert result.degraded is not None
    assert result.degraded.fallback == "deadline-expired"
    assert result.cost.database_access_cost == 0
    assert result.algorithm == "none"
    assert len(result.answers) == 0
    # Never touched the engine, so there is no run to certify.
    assert result.approximation is None
    assert service.metrics.counter_total("service.expired") == 1


def test_chaos_with_theta_still_certifies_soundly():
    """Transient faults + θ: every certificate survives the clean oracle."""
    truth = true_grades()
    engine = build_engine()
    engine.configure_resilience(
        None, fault_profile=FaultProfile(transient_rate=0.25, seed=13)
    )
    try:
        with QueryService(engine, ServiceConfig(workers=4)) as service:
            tickets = [
                service.submit(QUERY, 4, theta=1.5) for _ in range(12)
            ]
            results = [ticket.result(timeout=30) for ticket in tickets]
    finally:
        engine.close()
    certified = 0
    for result in results:
        if result.approximation is None:
            continue
        certified += 1
        certificate = result.approximation
        assert certificate.theta == 1.5
        # Clean θ-stops certify within θ; anytime stops certify
        # whatever the accumulated bounds prove.
        if not certificate.anytime and certificate.kth_grade > 0:
            assert certificate.achieved <= 1.5 + 1e-6
        assert_certificate_sound(result, truth)
    assert certified == len(results)  # θ > 1 always attaches a certificate


def test_anytime_answers_never_beyond_certified_bound():
    """Each anytime answer's reported grade is a true lower bound."""
    clock = VirtualClock()
    engine = build_engine(clock=clock)
    engine.configure_resilience(
        None,
        fault_profile=FaultProfile(latency_rate=1.0, latency=0.5, seed=5),
    )
    truth = true_grades()
    try:
        with QueryService(engine, clock=clock) as service:
            result = service.query(QUERY, 5, deadline=3.0, timeout=30)
    finally:
        engine.close()
    if result.degraded is None or result.degraded.fallback != "partial-bounds":
        return  # chaos spared this run; nothing anytime to check
    for item in result.answers:
        assert item.grade <= truth[item.object_id] + 1e-9
    grades = [item.grade for item in result.answers]
    assert grades == sorted(grades, reverse=True)
