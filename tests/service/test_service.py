"""QueryService: lifecycle, admission outcomes, deadlines, metrics."""

import pytest

from repro.errors import AdmissionError, ShedError
from repro.middleware.resilience import VirtualClock
from repro.service import (
    QueryService,
    QueryTicket,
    ServiceConfig,
    TenantPolicy,
)

from tests.service.helpers import QUERY, build_engine, build_gated_engine


@pytest.fixture()
def engine():
    engine = build_engine()
    yield engine
    engine.close()


def test_submit_result_matches_direct_engine_answer(engine):
    expected = engine.top_k(QUERY, 5)
    with QueryService(engine) as service:
        ticket = service.submit(QUERY, 5)
        result = ticket.result(timeout=10)
    assert ticket.status == "done"
    assert [(i.object_id, i.grade) for i in result.answers] == [
        (i.object_id, i.grade) for i in expected.answers
    ]
    assert result.algorithm == expected.algorithm


def test_sync_query_convenience(engine):
    expected = engine.top_k(QUERY, 3)
    with QueryService(engine) as service:
        result = service.query(QUERY, 3, timeout=10)
    assert [i.object_id for i in result.answers] == [
        i.object_id for i in expected.answers
    ]


def test_ticket_exposes_lifecycle_metadata(engine):
    with QueryService(engine) as service:
        ticket = service.submit(QUERY, 2, tenant="gold", priority=3)
        ticket.result(timeout=10)
    assert isinstance(ticket, QueryTicket)
    assert ticket.tenant == "gold"
    assert ticket.priority == 3
    assert ticket.finished_at is not None
    assert ticket.finished_at >= ticket.started_at >= ticket.submitted_at
    assert "gold" in repr(ticket)


def test_quota_rejection_reason_and_refill(engine):
    clock = VirtualClock()
    config = ServiceConfig(
        tenants={"metered": TenantPolicy(rate=1.0, burst=1.0)}
    )
    with QueryService(engine, config, clock=clock) as service:
        service.query(QUERY, 2, tenant="metered", timeout=10)
        with pytest.raises(AdmissionError) as caught:
            service.submit(QUERY, 2, tenant="metered")
        assert caught.value.reason == "quota"
        clock.sleep(1.0)  # bucket refills at 1 token/s
        service.query(QUERY, 2, tenant="metered", timeout=10)
        assert service.metrics.counter_total("service.rejected") == 1


def test_inflight_cap_rejection():
    engine, gate, atom = build_gated_engine()
    config = ServiceConfig(
        workers=2,
        tenants={"capped": TenantPolicy(max_inflight=1)},
    )
    try:
        with QueryService(engine, config) as service:
            first = service.submit(atom, 3, tenant="capped")
            assert gate.started.wait(timeout=10)  # first is RUNNING
            with pytest.raises(AdmissionError) as caught:
                service.submit(atom, 3, tenant="capped")
            assert caught.value.reason == "inflight"
            gate.open()
            first.result(timeout=10)
            # Slot freed: the tenant can submit again.
            service.query(atom, 3, tenant="capped", timeout=10)
    finally:
        engine.close()


def test_queue_full_rejects_equal_priority():
    engine, gate, atom = build_gated_engine()
    config = ServiceConfig(workers=1, queue_depth=1)
    try:
        with QueryService(engine, config) as service:
            running = service.submit(atom, 3)
            assert gate.started.wait(timeout=10)
            queued = service.submit(atom, 3)  # fills the queue
            with pytest.raises(AdmissionError) as caught:
                service.submit(atom, 3)  # same priority: refused
            assert caught.value.reason == "queue-full"
            gate.open()
            assert running.result(timeout=10).answers
            assert queued.result(timeout=10).answers
    finally:
        engine.close()


def test_higher_priority_sheds_queued_lower_priority():
    engine, gate, atom = build_gated_engine()
    config = ServiceConfig(workers=1, queue_depth=1)
    try:
        with QueryService(engine, config) as service:
            running = service.submit(atom, 3, priority=0)
            assert gate.started.wait(timeout=10)
            victim = service.submit(atom, 3, priority=0)  # queued
            vip = service.submit(atom, 3, priority=5)  # sheds the victim
            assert victim.status == "shed"
            with pytest.raises(ShedError) as caught:
                victim.result(timeout=1)
            assert caught.value.reason == "shed"
            # The RUNNING query was never touched.
            assert running.status == "running"
            gate.open()
            assert running.result(timeout=10).answers
            assert vip.result(timeout=10).answers
            assert service.metrics.counter_total("service.shed") == 1
    finally:
        engine.close()


def test_never_sheds_running_work():
    engine, gate, atom = build_gated_engine()
    config = ServiceConfig(workers=1, queue_depth=1)
    try:
        with QueryService(engine, config) as service:
            running = service.submit(atom, 3, priority=0)
            assert gate.started.wait(timeout=10)
            # Queue is empty; a flood of high-priority arrivals fills it
            # and then gets refused — the running low-priority query is
            # not a shedding candidate.
            service.submit(atom, 3, priority=9)
            with pytest.raises(AdmissionError):
                service.submit(atom, 3, priority=9)
            assert running.status == "running"
            gate.open()
            assert running.result(timeout=10).answers
    finally:
        engine.close()


def test_deadline_expired_in_queue_degrades_without_running(engine):
    clock = VirtualClock()
    with QueryService(engine, clock=clock) as service:
        # A zero budget is already spent when a worker picks it up.
        result = service.query(QUERY, 5, deadline=0.0, timeout=10)
    assert result.degraded is not None
    assert result.degraded.fallback == "deadline-expired"
    assert not result.degraded.complete
    assert len(result.answers) == 0
    assert result.cost.database_access_cost == 0
    assert service.metrics.counter_total("service.expired") == 1
    assert service.metrics.counter_total("service.degraded") == 1


def test_default_deadline_from_config(engine):
    clock = VirtualClock()
    config = ServiceConfig(default_deadline=0.0)
    with QueryService(engine, config, clock=clock) as service:
        assert service.query(QUERY, 5, timeout=10).degraded is not None
        # An explicit per-request deadline overrides the default.
        assert service.query(QUERY, 5, deadline=60.0, timeout=10).degraded is None


def test_submit_after_close_rejected(engine):
    service = QueryService(engine)
    service.close()
    with pytest.raises(AdmissionError) as caught:
        service.submit(QUERY, 5)
    assert caught.value.reason == "closed"
    service.close()  # idempotent


def test_close_drains_queued_work_by_default():
    engine, gate, atom = build_gated_engine()
    config = ServiceConfig(workers=1, queue_depth=4)
    try:
        service = QueryService(engine, config)
        running = service.submit(atom, 3)
        assert gate.started.wait(timeout=10)
        queued = [service.submit(atom, 3) for _ in range(3)]
        gate.open()
        service.close()  # drain=True
        assert running.result(timeout=0).answers
        for ticket in queued:
            assert ticket.result(timeout=0).answers
    finally:
        engine.close()


def test_close_without_drain_fails_queued_not_running():
    engine, gate, atom = build_gated_engine()
    config = ServiceConfig(workers=1, queue_depth=4)
    try:
        service = QueryService(engine, config)
        running = service.submit(atom, 3)
        assert gate.started.wait(timeout=10)
        queued = [service.submit(atom, 3) for _ in range(3)]
        gate.open()
        service.close(drain=False)
        # The running query still finished; queued work was refused.
        assert running.result(timeout=0).answers
        for ticket in queued:
            if ticket.status == "rejected":
                with pytest.raises(AdmissionError):
                    ticket.result(timeout=0)
    finally:
        engine.close()


def test_result_timeout_raises_timeout_error():
    engine, gate, atom = build_gated_engine()
    try:
        with QueryService(engine, ServiceConfig(workers=1)) as service:
            ticket = service.submit(atom, 3)
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.01)
            gate.open()
            assert ticket.result(timeout=10).answers
    finally:
        engine.close()


def test_metrics_counters_and_gauges(engine):
    with QueryService(engine) as service:
        for _ in range(4):
            service.query(QUERY, 3, tenant="a", timeout=10)
        service.query(QUERY, 3, tenant="b", timeout=10)
        stats = service.stats()
    assert stats["submitted"] == 5
    assert stats["admitted"] == 5
    assert stats["completed"] == 5
    assert stats["rejected"] == stats["shed"] == stats["failed"] == 0
    rendered = service.metrics.as_dict()
    assert rendered["counters"]["service.completed{tenant=a}"] == 4
    assert rendered["counters"]["service.completed{tenant=b}"] == 1
    assert rendered["gauges"]["service.queue_depth"] == 0
    assert rendered["gauges"]["service.inflight{tenant=a}"] == 0
    latency = rendered["histograms"]["service.latency_seconds{tenant=a}"]
    assert latency["count"] == 4
    wait = rendered["histograms"]["service.queue_wait_seconds{tenant=a}"]
    assert wait["count"] == 4


def test_per_request_trace(engine):
    with QueryService(engine) as service:
        traced = service.submit(QUERY, 3, trace=True)
        plain = service.submit(QUERY, 3)
        traced.result(timeout=10)
        plain.result(timeout=10)
    assert traced.trace is not None
    assert traced.trace.events, "trace should have recorded the query"
    assert plain.trace is None


def test_trace_requests_config_default(engine):
    with QueryService(engine, ServiceConfig(trace_requests=True)) as service:
        ticket = service.submit(QUERY, 3)
        ticket.result(timeout=10)
        opt_out = service.submit(QUERY, 3, trace=False)
        opt_out.result(timeout=10)
    assert ticket.trace is not None
    assert opt_out.trace is None


def test_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(workers=0)
    with pytest.raises(ValueError):
        ServiceConfig(access_workers=0)
    with pytest.raises(ValueError):
        ServiceConfig(fair_share=0)


def test_failed_query_surfaces_original_error(engine):
    from repro.core.query import Atomic

    with QueryService(engine) as service:
        ticket = service.submit(Atomic("NoSuch", "thing"), 3)
        with pytest.raises(Exception):
            ticket.result(timeout=10)
    assert ticket.status == "failed"
    assert service.metrics.counter_total("service.failed") == 1


def test_shared_access_pool_with_fair_share(engine):
    expected = engine.top_k(QUERY, 5)
    config = ServiceConfig(workers=3, access_workers=4, fair_share=2)
    with QueryService(engine, config) as service:
        tickets = [service.submit(QUERY, 5) for _ in range(12)]
        for ticket in tickets:
            result = ticket.result(timeout=10)
            assert [(i.object_id, i.grade) for i in result.answers] == [
                (i.object_id, i.grade) for i in expected.answers
            ]


def test_service_repr(engine):
    service = QueryService(engine)
    assert "open" in repr(service)
    service.close()
    assert "closed" in repr(service)
