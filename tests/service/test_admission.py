"""Admission control: token buckets, tenant quotas, bounded shedding queue."""

import threading

import pytest

from repro.middleware.resilience import VirtualClock
from repro.service.admission import (
    AdmissionQueue,
    TenantPolicy,
    TenantState,
    TenantTable,
    TokenBucket,
)


class Entry:
    """Minimal queue entry: priority + submission sequence."""

    def __init__(self, priority, seq):
        self.priority = priority
        self.seq = seq

    def __repr__(self):
        return f"Entry(p{self.priority}, #{self.seq})"


# ---------------------------------------------------------------- bucket


def test_bucket_starts_full_and_drains():
    clock = VirtualClock()
    bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_bucket_refills_at_rate_up_to_burst():
    clock = VirtualClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    for _ in range(4):
        assert bucket.try_acquire()
    clock.sleep(1.0)  # +2 tokens
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.sleep(100.0)  # refill clamps at burst
    assert bucket.available == 4.0


def test_bucket_refund_restores_tokens():
    clock = VirtualClock()
    bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    bucket.refund()
    assert bucket.try_acquire()


def test_unlimited_bucket_always_grants():
    bucket = TokenBucket(rate=None, burst=1.0, clock=VirtualClock())
    for _ in range(1000):
        assert bucket.try_acquire()
    assert bucket.available == float("inf")


def test_bucket_rejects_bad_parameters():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0, clock=clock)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.0, clock=clock)


# ---------------------------------------------------------------- tenants


def test_tenant_inflight_cap_then_quota():
    clock = VirtualClock()
    state = TenantState(TenantPolicy(rate=1.0, burst=10.0, max_inflight=2), clock)
    assert state.try_reserve() == (True, "")
    assert state.try_reserve() == (True, "")
    assert state.try_reserve() == (False, "inflight")
    state.release()
    ok, _ = state.try_reserve()
    assert ok


def test_tenant_quota_exhaustion_reports_quota():
    clock = VirtualClock()
    state = TenantState(TenantPolicy(rate=1.0, burst=1.0), clock)
    assert state.try_reserve() == (True, "")
    state.release()  # inflight freed, token NOT refunded (work ran)
    assert state.try_reserve() == (False, "quota")
    clock.sleep(1.0)
    assert state.try_reserve() == (True, "")


def test_tenant_release_with_refund_returns_token():
    clock = VirtualClock()
    state = TenantState(TenantPolicy(rate=1.0, burst=1.0), clock)
    assert state.try_reserve() == (True, "")
    state.release(refund_token=True)  # admission failed downstream
    assert state.try_reserve() == (True, "")


def test_tenant_table_per_tenant_policies_and_default():
    clock = VirtualClock()
    table = TenantTable(
        TenantPolicy(),
        {"bronze": TenantPolicy(max_inflight=1)},
        clock,
    )
    assert table.state("bronze").policy.max_inflight == 1
    assert table.state("anyone").policy.max_inflight is None
    assert table.state("bronze") is table.state("bronze")
    assert table.inflight("bronze") == 0


# ---------------------------------------------------------------- queue


def test_queue_fifo_within_priority():
    queue = AdmissionQueue(4)
    entries = [Entry(0, seq) for seq in range(3)]
    for entry in entries:
        assert queue.offer(entry) == (True, None)
    assert [queue.take(0) for _ in range(3)] == entries


def test_queue_takes_highest_priority_first():
    queue = AdmissionQueue(4)
    low, high, mid = Entry(0, 1), Entry(2, 2), Entry(1, 3)
    for entry in (low, high, mid):
        queue.offer(entry)
    assert queue.take(0) is high
    assert queue.take(0) is mid
    assert queue.take(0) is low


def test_full_queue_sheds_strictly_lower_priority_newest_first():
    queue = AdmissionQueue(2)
    old_low, new_low = Entry(0, 1), Entry(0, 2)
    queue.offer(old_low)
    queue.offer(new_low)
    admitted, victim = queue.offer(Entry(1, 3))
    assert admitted
    # The newest entry of the worst priority level is shed; the oldest
    # queued work at that level survives.
    assert victim is new_low
    assert len(queue) == 2


def test_full_queue_rejects_equal_priority_arrival():
    queue = AdmissionQueue(2)
    queue.offer(Entry(1, 1))
    queue.offer(Entry(1, 2))
    assert queue.offer(Entry(1, 3)) == (False, None)
    assert queue.offer(Entry(0, 4)) == (False, None)  # lower: also refused
    assert len(queue) == 2


def test_taken_entry_can_never_be_shed():
    """offer/take share a lock: an entry is taken XOR shed, never both."""
    queue = AdmissionQueue(1)
    first = Entry(0, 1)
    queue.offer(first)
    taken = queue.take(0)
    assert taken is first
    # Queue is empty again: the next offer admits without a victim.
    assert queue.offer(Entry(5, 2)) == (True, None)


def test_take_blocks_until_offer_arrives():
    queue = AdmissionQueue(2)
    received = []

    def taker():
        received.append(queue.take(timeout=5.0))

    thread = threading.Thread(target=taker)
    thread.start()
    entry = Entry(0, 1)
    queue.offer(entry)
    thread.join(timeout=5.0)
    assert received == [entry]


def test_take_times_out_empty():
    queue = AdmissionQueue(1)
    assert queue.take(timeout=0.01) is None


def test_drain_empties_the_queue():
    queue = AdmissionQueue(4)
    entries = [Entry(0, seq) for seq in range(3)]
    for entry in entries:
        queue.offer(entry)
    assert queue.drain() == entries
    assert len(queue) == 0


def test_queue_rejects_bad_depth():
    with pytest.raises(ValueError):
        AdmissionQueue(0)


def test_concurrent_offer_take_conserves_entries():
    """Hammer the queue from both sides; nothing lost, nothing duplicated."""
    queue = AdmissionQueue(8)
    total = 200
    produced = [Entry(seq % 3, seq) for seq in range(total)]
    consumed, lock = [], threading.Lock()
    shed = []

    def producer(chunk):
        for entry in chunk:
            while True:
                admitted, victim = queue.offer(entry)
                if victim is not None:
                    with lock:
                        shed.append(victim)
                if admitted:
                    break

    def consumer():
        while True:
            entry = queue.take(timeout=0.2)
            if entry is None:
                return
            with lock:
                consumed.append(entry)

    consumers = [threading.Thread(target=consumer) for _ in range(3)]
    producers = [
        threading.Thread(target=producer, args=(produced[i::2],))
        for i in range(2)
    ]
    for thread in consumers + producers:
        thread.start()
    for thread in producers:
        thread.join(timeout=10.0)
    for thread in consumers:
        thread.join(timeout=10.0)
    seen = consumed + shed + queue.drain()
    assert sorted(e.seq for e in seen) == list(range(total))
    # XOR: no entry may appear on both sides.
    assert not ({e.seq for e in consumed} & {e.seq for e in shed})
