"""Wrapper stacks over the storage backends.

The seam contract: every wrapper (`SortedOnlySource`, `MappedSource`,
`ResilientSource`, `TracingSource`) composes over `MemmapSource` and
`ShardedSource` exactly as it does over the in-RAM backends — shared
counters, free peeks, and random-access attribution that reaches the
owning shard even when a mapping layer renames every object on the way
down.  Also home of the columnar-materialization regression guards
(`object_ids` / `as_graded_set` must not box one item per object).
"""

import random
import tracemalloc

import pytest

from repro.core.sources import ArraySource, SortedOnlySource
from repro.errors import UnsupportedAccessError
from repro.middleware.idmap import IdMapping, MappedSource
from repro.middleware.resilience import ResilientSource, VirtualClock
from repro.observability import QueryTracer
from repro.observability.tracer import TracingSource
from repro.storage import ShardedSource, build_from_items


def make_column(n, seed=0):
    rng = random.Random(seed)
    return {f"obj{i:03d}": rng.choice((0.0, 0.25, 0.5, 0.75, 1.0)) for i in range(n)}


def backends(tmp_path, column):
    ids = list(column.keys())
    return {
        "array": ArraySource.from_arrays(
            ids, [column[i] for i in ids], name="col"
        ),
        "memmap": build_from_items(str(tmp_path / "mm"), column, name="col"),
        "sharded": ShardedSource.partition(column, 3, name="col"),
    }


# ---------------------------------------------------------- sorted-only


@pytest.mark.parametrize("kind", ["array", "memmap", "sharded"])
def test_sorted_only_over_each_backend(tmp_path, kind):
    column = make_column(20, seed=1)
    inner = backends(tmp_path, column)[kind]
    reference = backends(tmp_path.joinpath("ref"), column)["array"]
    source = SortedOnlySource(inner)
    assert not source.supports_random_access
    got = source.cursor().next_batch(20)
    want = reference.cursor().next_batch(20)
    assert [(i.object_id, i.grade) for i in got] == [
        (i.object_id, i.grade) for i in want
    ]
    with pytest.raises(UnsupportedAccessError):
        source.random_access("obj001")
    with pytest.raises(UnsupportedAccessError):
        source.random_access_many(["obj001", "obj002"])
    # the failed probes charged nothing; the sorted drain charged fully
    assert inner.counter.snapshot() == (20, 0)


@pytest.mark.parametrize("kind", ["array", "memmap", "sharded"])
def test_peeks_stay_free_through_wrappers(tmp_path, kind):
    inner = backends(tmp_path, make_column(15))[kind]
    source = SortedOnlySource(inner)
    cursor = source.cursor()
    cursor.peek_batch(10)
    cursor.peek_batch_columns(10)
    assert inner.counter.snapshot() == (0, 0)
    if kind == "sharded":
        for shard in inner.shards:
            assert shard.counter.snapshot() == (0, 0)


def test_wrapped_cursor_falls_back_from_columnar(tmp_path):
    # SortedOnlySource does not advertise supports_columnar, so the
    # cursor's columnar batch must transparently unbox items instead
    column = make_column(12)
    inner = backends(tmp_path, column)["sharded"]
    source = SortedOnlySource(inner)
    assert not source.supports_columnar
    ids, grades = source.cursor().next_batch_columns(6)
    want = backends(tmp_path.joinpath("r"), column)["array"].cursor().next_batch(6)
    assert ids == [i.object_id for i in want]
    assert list(grades) == [i.grade for i in want]
    assert inner.counter.snapshot() == (6, 0)


# --------------------------------------------- mapped/resilient/tracing


def shard_rollup(sharded):
    totals = (0, 0)
    for shard in sharded.shards:
        s, r = shard.counter.snapshot()
        totals = (totals[0] + s, totals[1] + r)
    return totals


def test_mapped_resilient_tracing_chain_over_sharded(tmp_path):
    # the subsystem speaks local ids; the middleware speaks global ids
    column = make_column(24, seed=5)
    local_ids = list(column.keys())
    sharded = ShardedSource.partition(column, 3, name="col")
    mapping = IdMapping({f"g-{i}": i for i in local_ids})
    tracer = QueryTracer()
    stack = TracingSource(
        ResilientSource(
            MappedSource(sharded, mapping), clock=VirtualClock()
        ),
        tracer,
    )

    got = stack.cursor().next_batch(7)
    assert all(item.object_id.startswith("g-obj") for item in got)

    probes = [f"g-{i}" for i in local_ids[:5]]
    grades = stack.random_access_many(probes)
    assert grades == {f"g-{i}": column[i] for i in local_ids[:5]}
    stack.random_access(probes[0])

    # one shared counter all the way down, and the shard tallies sum to
    # exactly the top-level charges: the mapping layer translated the
    # global probes into ids the router could own
    assert stack.counter is sharded.counter
    assert stack.counter.snapshot() == (7, 6)
    assert shard_rollup(sharded) == (7, 6)

    # the tracing layer saw every charged access under the resilient
    # wrapper's name for the logical source
    kinds = [event["type"] for event in tracer.events]
    assert kinds.count("sorted") == 7
    assert kinds.count("random") == 6
    assert {event["source"] for event in tracer.events} == {"resilient(col)"}


def test_free_reads_charge_nothing_through_full_stack(tmp_path):
    column = make_column(18, seed=2)
    sharded = ShardedSource.partition(column, 2, name="col")
    mapping = IdMapping.identity(column.keys())
    tracer = QueryTracer()
    stack = TracingSource(
        ResilientSource(MappedSource(sharded, mapping), clock=VirtualClock()),
        tracer,
    )
    stack.cursor().peek_batch(10)
    materialized = stack.as_graded_set()
    assert {i.object_id: i.grade for i in materialized} == column
    assert list(stack.object_ids()) == [
        i.object_id for i in ShardedSource.partition(
            column, 2, name="col"
        ).cursor().next_batch(18)
    ]
    assert stack.counter.snapshot() == (0, 0)
    assert tracer.events == []


# ----------------------------------------- materialization memory guard


def _forbid_item_paths(source):
    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError(
            "columnar backend materialized through the per-item path"
        )

    source._items_range = boom
    source._peek_range = boom
    source._item_at = boom
    source._peek_at = boom


@pytest.mark.parametrize("kind", ["array", "memmap", "sharded"])
def test_materialization_avoids_per_item_boxing(tmp_path, kind):
    column = make_column(30, seed=3)
    source = backends(tmp_path, column)[kind]
    if kind == "sharded":
        source._extend_merged(len(column))  # merge first: it uses peeks
    _forbid_item_paths(source)
    assert set(source.object_ids()) == set(column)
    assert {i.object_id: i.grade for i in source.as_graded_set()} == column


def test_materialization_memory_stays_columnar():
    # Regression guard for the satellite: object_ids/as_graded_set on a
    # columnar source must stream chunks, not box N GradedItems.  A
    # boxed GradedItem costs ~150 bytes; with N=200k the old path
    # peaked >= 30 MB.  The columnar path holds one ~1k-entry chunk at
    # a time, so everything beyond the result dict itself stays small.
    n = 200_000
    ids = [f"obj{i:06d}" for i in range(n)]
    grades = [((n - i) % 1000) / 1000.0 for i in range(n)]
    source = ArraySource.from_arrays(ids, grades, name="big")

    tracemalloc.start()
    count = sum(1 for _ in source.object_ids())
    _, id_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert count == n
    # streaming ids holds one chunk of strings, far below boxing 200k
    # GradedItems (>= 30 MB); allow generous slack for interpreter noise
    assert id_peak < 8_000_000, f"object_ids peaked at {id_peak} bytes"

    tracemalloc.start()
    graded = source.as_graded_set()
    _, set_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(graded) == n
    # the result dict itself costs ~20 MB; per-item boxing would add
    # another >= 30 MB on top
    assert set_peak < 36_000_000, f"as_graded_set peaked at {set_peak} bytes"
