"""MemmapSource: build/open/verify tooling and out-of-core semantics.

The memmap backend must be indistinguishable from an ArraySource over
the same column — same canonical order ``(-grade, str(id))``, same
random-access grades, same charged accounting — while holding only
page-cache views of the on-disk columns.
"""

import json
import os

import numpy as np
import pytest

from repro.core.sources import ArraySource
from repro.errors import GradeError, StorageError, UnknownObjectError
from repro.storage import (
    MemmapSource,
    build_from_items,
    build_memmap,
    build_synthetic_memmap,
    open_memmap,
    verify_memmap,
)

COLUMN = {
    "walrus": 0.8,
    "lobster": 0.8,  # tie with walrus: str-order break
    "crab": 0.31,
    "eel": 1.0,
    "squid": 0.0,
}


def build(tmp_path, column=COLUMN, name="col"):
    ids = list(column.keys())
    grades = [column[i] for i in ids]
    return build_memmap(str(tmp_path / name), ids, grades, name=name)


# ------------------------------------------------------------ round-trip


def test_build_then_open_matches_array_source(tmp_path):
    built = build(tmp_path)
    reopened = open_memmap(str(tmp_path / "col"))
    reference = ArraySource.from_arrays(
        list(COLUMN), [COLUMN[i] for i in COLUMN], name="col"
    )
    for source in (built, reopened):
        assert len(source) == len(COLUMN)
        stream = source.cursor().next_batch(len(COLUMN))
        expected = reference.cursor().next_batch(len(COLUMN))
        assert [(i.object_id, i.grade) for i in stream] == [
            (i.object_id, i.grade) for i in expected
        ]
        # ids come back as pure Python strings, not numpy scalars
        assert all(type(item.object_id) is str for item in stream)


def test_random_access_grades_and_charges(tmp_path):
    source = build(tmp_path)
    assert source.random_access("crab") == 0.31
    got = source.random_access_many(["eel", "squid", "walrus"])
    assert got == {"eel": 1.0, "squid": 0.0, "walrus": 0.8}
    assert source.counter.snapshot() == (0, 4)


def test_integer_ids_round_trip(tmp_path):
    ids = [7, 3, 11]
    source = build_memmap(str(tmp_path / "n"), ids, [0.5, 0.9, 0.5], name="n")
    # canonical order: grade desc, then ascending str(id): "11" < "7"
    assert [i.object_id for i in source.cursor().next_batch(3)] == [3, 11, 7]
    assert source.random_access(11) == 0.5
    assert type(source.cursor().next_batch(1)[0].object_id) is int


def test_unknown_and_wrongly_typed_probes(tmp_path):
    source = build(tmp_path)
    with pytest.raises(UnknownObjectError):
        source.random_access("kraken")
    with pytest.raises(UnknownObjectError):
        source.random_access(42)  # int probe against a str column
    numeric = build_memmap(str(tmp_path / "n"), [1, 2], [0.5, 0.4], name="n")
    with pytest.raises(UnknownObjectError):
        numeric.random_access("1")


def test_peeks_and_prefetch_are_free(tmp_path):
    source = build(tmp_path)
    cursor = source.cursor()
    cursor.peek_batch(3)
    cursor.peek_batch_columns(3)
    source.prefetch_sorted(len(COLUMN))
    assert source.counter.snapshot() == (0, 0)


def test_columnar_batch_path(tmp_path):
    source = build(tmp_path)
    assert source.supports_columnar
    ids, grades = source.cursor().next_batch_columns(3)
    assert ids == ["eel", "lobster", "walrus"]
    assert np.asarray(grades).tolist() == [1.0, 0.8, 0.8]
    assert source.counter.snapshot() == (3, 0)


# ------------------------------------------------------------- builders


def test_build_from_items_mapping(tmp_path):
    source = build_from_items(str(tmp_path / "m"), COLUMN, name="m")
    assert {i.object_id: i.grade for i in source.as_graded_set()} == COLUMN


def test_build_rejects_duplicate_ids(tmp_path):
    with pytest.raises(StorageError):
        build_memmap(str(tmp_path / "d"), ["a", "a"], [0.5, 0.4], name="d")


def test_build_rejects_mixed_id_types(tmp_path):
    with pytest.raises(StorageError):
        build_memmap(str(tmp_path / "x"), ["a", 1], [0.5, 0.4], name="x")


def test_build_rejects_out_of_range_grades(tmp_path):
    with pytest.raises(GradeError):
        build_memmap(str(tmp_path / "g"), ["a", "b"], [0.5, 1.4], name="g")
    with pytest.raises(GradeError):
        build_memmap(str(tmp_path / "g"), ["a"], [float("nan")], name="g")


def test_empty_source(tmp_path):
    source = build_memmap(str(tmp_path / "e"), [], [], name="e")
    assert len(source) == 0
    assert source.cursor().exhausted
    assert verify_memmap(str(tmp_path / "e"))["count"] == 0


def test_open_missing_or_corrupt_directory(tmp_path):
    with pytest.raises(StorageError):
        open_memmap(str(tmp_path / "nowhere"))
    os.makedirs(str(tmp_path / "bad"))
    with open(str(tmp_path / "bad" / "manifest.json"), "w") as handle:
        json.dump({"format": "something-else"}, handle)
    with pytest.raises(StorageError):
        open_memmap(str(tmp_path / "bad"))


def test_synthetic_builder_and_verify(tmp_path):
    directory = str(tmp_path / "synthetic")
    source = build_synthetic_memmap(directory, 5000, chunk=1024)
    assert len(source) == 5000
    grades = np.asarray(source._sorted_grades)
    assert (np.diff(grades) < 0).all()  # strictly decreasing: no ties
    assert source.random_access(0) == grades[0]
    report = verify_memmap(directory)
    assert report["count"] == 5000
    assert "grades-sorted-nonincreasing" in report["checks"]


def test_verify_detects_corruption(tmp_path):
    build(tmp_path)
    directory = str(tmp_path / "col")
    manifest = json.load(open(os.path.join(directory, "manifest.json")))
    grades_file = os.path.join(directory, manifest["files"]["grades"])
    column = np.fromfile(grades_file, dtype=np.float64)
    column[0] = 0.01  # top of the sorted run is now out of order
    column.tofile(grades_file)
    with pytest.raises(StorageError):
        verify_memmap(directory)


def test_source_verify_method(tmp_path):
    source = build(tmp_path)
    assert source.verify()["count"] == len(COLUMN)
