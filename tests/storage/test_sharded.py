"""ShardedSource: exact K-way merge, routing, and accounting roll-up.

The sharded view must be indistinguishable from a monolithic source
over the same column — identical item stream (ties broken by
``(-grade, str(id))`` across shards), identical charged totals — while
every physical access lands on exactly one shard's counter, so the
shard tallies always sum to the parent's.
"""

import random

import pytest

from repro.core.sources import ArraySource, ListSource
from repro.errors import AccessError, StorageError, UnknownObjectError
from repro.parallel import ParallelAccessExecutor
from repro.storage import MemmapSource, ShardedSource, hash_router


def make_column(n, seed=0):
    rng = random.Random(seed)
    # quantized grades so cross-shard ties are common
    return {f"obj{i:03d}": rng.choice((0.0, 0.25, 0.5, 0.75, 1.0)) for i in range(n)}


def monolithic(column, name="col"):
    ids = list(column.keys())
    return ArraySource.from_arrays(ids, [column[i] for i in ids], name=name)


def sharded(column, shards, *, merge_block=4, name="col"):
    return ShardedSource.partition(
        column, shards, name=name, merge_block=merge_block
    )


# ---------------------------------------------------------------- merge


@pytest.mark.parametrize("shards", [1, 2, 5])
@pytest.mark.parametrize("merge_block", [1, 3, 64])
def test_merged_stream_matches_monolithic(shards, merge_block):
    column = make_column(40, seed=shards)
    reference = monolithic(column)
    source = sharded(column, shards, merge_block=merge_block)
    got = source.cursor().next_batch(len(column))
    want = reference.cursor().next_batch(len(column))
    assert [(i.object_id, i.grade) for i in got] == [
        (i.object_id, i.grade) for i in want
    ]
    assert source.cursor().exhausted or len(got) == len(column)


def test_peek_is_free_and_side_effect_free():
    column = make_column(30)
    source = sharded(column, 3)
    cursor = source.cursor()
    peeked = cursor.peek_batch(10)
    assert source.counter.snapshot() == (0, 0)
    for shard in source.shards:
        assert shard.counter.snapshot() == (0, 0)
    # the peek did not consume: the same items are delivered next
    delivered = cursor.next_batch(10)
    assert [(i.object_id, i.grade) for i in delivered] == [
        (i.object_id, i.grade) for i in peeked
    ]


def test_columnar_batch_path_matches_items():
    column = make_column(25)
    source = sharded(column, 4)
    ids, grades = source.cursor().next_batch_columns(12)
    reference = monolithic(column).cursor().next_batch(12)
    assert ids == [i.object_id for i in reference]
    assert list(grades) == [i.grade for i in reference]


# ----------------------------------------------------------- accounting


def rollup(source):
    totals = (0, 0)
    for shard in source.shards:
        s, r = shard.counter.snapshot()
        totals = (totals[0] + s, totals[1] + r)
    return totals


@pytest.mark.parametrize("shards", [1, 2, 5])
def test_accounting_rolls_up_exactly(shards):
    column = make_column(40, seed=7)
    source = sharded(column, shards)
    cursor = source.cursor()
    cursor.next_batch(17)
    source.random_access_many(list(column)[:9])
    source.random_access("obj003")
    assert source.counter.snapshot() == (17, 10)
    assert rollup(source) == (17, 10)


def test_shard_stats_shape():
    column = make_column(20)
    source = sharded(column, 3, name="col")
    source.cursor().next_batch(5)
    stats = source.shard_stats()
    assert [entry["shard"] for entry in stats] == [
        "col.s0", "col.s1", "col.s2"
    ]
    assert sum(entry["n"] for entry in stats) == 20
    assert sum(entry["sorted"] for entry in stats) == 5
    assert all(entry["random"] == 0 for entry in stats)


# -------------------------------------------------------------- routing


def test_hash_router_is_stable_and_bounded():
    route = hash_router(5)
    for obj in ("a", "b", 17, "obj001"):
        index = route(obj)
        assert 0 <= index < 5
        assert route(obj) == index


def test_routerless_falls_back_to_probing():
    column = make_column(15)
    ids = list(column.keys())
    halves = [
        ListSource({i: column[i] for i in ids[:8]}, name="s0"),
        ListSource({i: column[i] for i in ids[8:]}, name="s1"),
    ]
    source = ShardedSource(halves, name="col", router=None)
    assert source.random_access(ids[10]) == column[ids[10]]
    # exactly one charged probe, on the owning shard
    assert rollup(source) == (0, 1)
    with pytest.raises(UnknownObjectError):
        source.random_access("missing")


def test_unknown_object_error_names_logical_source():
    source = sharded(make_column(10), 2, name="logical")
    with pytest.raises(UnknownObjectError) as excinfo:
        source.random_access("nope")
    assert "logical" in str(excinfo.value)
    assert ".s0" not in str(excinfo.value)


# ------------------------------------------------------------ partition


def test_partition_backends(tmp_path):
    column = make_column(30)
    reference = monolithic(column)
    want = reference.cursor().next_batch(30)
    for backend, directory in (
        ("array", None),
        ("list", None),
        ("memmap", str(tmp_path / "shards")),
    ):
        source = ShardedSource.partition(
            column, 3, name="col", backend=backend, directory=directory
        )
        got = source.cursor().next_batch(30)
        assert [(i.object_id, i.grade) for i in got] == [
            (i.object_id, i.grade) for i in want
        ], backend
    with pytest.raises(StorageError):
        ShardedSource.partition(column, 2, name="col", backend="memmap")
    with pytest.raises(AccessError):
        ShardedSource.partition(column, 2, name="col", backend="paper-tape")


def test_partitioned_memmap_shards_are_memmaps(tmp_path):
    source = ShardedSource.partition(
        make_column(12), 2, name="col", backend="memmap",
        directory=str(tmp_path / "p"),
    )
    assert all(isinstance(shard, MemmapSource) for shard in source.shards)


def test_empty_and_skewed_shards():
    # all objects hash wherever they hash; force skew with a router that
    # sends everything to shard 0
    column = make_column(10)
    ids = list(column.keys())
    shards = [
        ListSource({i: column[i] for i in ids}, name="s0"),
        ListSource({}, name="s1"),
    ]
    source = ShardedSource(shards, name="col", router=lambda obj: 0)
    got = source.cursor().next_batch(10)
    want = monolithic(column).cursor().next_batch(10)
    assert [(i.object_id, i.grade) for i in got] == [
        (i.object_id, i.grade) for i in want
    ]


# ------------------------------------------------------------- prefetch


def test_prefetch_with_executor_matches_serial():
    column = make_column(60, seed=3)
    serial = sharded(column, 4)
    serial_items = serial.cursor().next_batch(60)
    concurrent = sharded(column, 4)
    with ParallelAccessExecutor(4) as executor:
        concurrent.prefetch_sorted(60, executor=executor)
    assert concurrent.counter.snapshot() == (0, 0)  # prefetch is free
    got = concurrent.cursor().next_batch(60)
    assert [(i.object_id, i.grade) for i in got] == [
        (i.object_id, i.grade) for i in serial_items
    ]
    assert concurrent.counter.snapshot() == (60, 0)
    assert rollup(concurrent) == (60, 0)
