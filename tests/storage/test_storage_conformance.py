"""Differential conformance across physical storage backends.

The tentpole contract of the storage refactor: for every algorithm,
answers, tie-breaks, charged access counts, and traces are
byte-identical across {ListSource, ArraySource, MemmapSource,
ShardedSource(K in 1, 2, 5)} x {scalar, vector kernels} x {1, 4
workers}.  Hypothesis drives small adversarial databases (clustered
grade levels so cross-backend tie-breaking is constantly exercised);
the reference run is always ArraySource / scalar / serial.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fagin import fagin_top_k
from repro.core.naive import naive_top_k
from repro.core.sources import sources_from_columns
from repro.core.threshold import combined_top_k, nra_top_k, threshold_top_k
from repro.observability import QueryTracer
from repro.parallel import ParallelAccessExecutor
from repro.scoring import means, tnorms
from tests.strategies import graded_databases as shared_graded_databases

# (label, backend, shards): every physical layout under test
LAYOUTS = (
    ("list", "list", 1),
    ("memmap", "memmap", 1),
    ("sharded-k1", "array", 1),
    ("sharded-k2", "array", 2),
    ("sharded-k5", "array", 5),
    ("sharded-memmap-k2", "memmap", 2),
)


def graded_databases(min_m=2, max_m=3, max_n=14):
    return shared_graded_databases(
        min_m=min_m, max_m=max_m, max_n=max_n, rows="list"
    )


def run_naive(sources, rule, k, tracer, executor, kernel):
    return naive_top_k(
        sources, rule, k, tracer=tracer, executor=executor, kernel=kernel
    )


def run_a0(sources, rule, k, tracer, executor, kernel):
    return fagin_top_k(
        sources, rule, k, tracer=tracer, executor=executor, kernel=kernel
    )


def run_ta(sources, rule, k, tracer, executor, kernel):
    return threshold_top_k(
        sources, rule, k, batch_size=3, tracer=tracer, executor=executor,
        kernel=kernel,
    )


def run_nra(sources, rule, k, tracer, executor, kernel):
    return nra_top_k(
        sources, rule, k, batch_size=3, tracer=tracer, executor=executor,
        kernel=kernel,
    )


def run_ca(sources, rule, k, tracer, executor, kernel):
    return combined_top_k(
        sources, rule, k, ratio=3.0, tracer=tracer, executor=executor,
        kernel=kernel,
    )


ALGORITHMS = (
    ("naive", run_naive),
    ("a0", run_a0),
    ("ta", run_ta),
    ("nra", run_nra),
    ("ca", run_ca),
)


def run_once(algorithm, table, rule, k, *, backend, shards, kernel, workers=1):
    # memmap layouts build into a temporary directory owned by the
    # sources themselves; nothing to clean up here
    sources = sources_from_columns(table, backend=backend, shards=shards)
    tracer = QueryTracer()
    if workers == 1:
        result = algorithm(sources, rule, k, tracer, None, kernel)
    else:
        with ParallelAccessExecutor(workers) as executor:
            result = algorithm(sources, rule, k, tracer, executor, kernel)
    return result, tracer.to_json()


def assert_identical(label, reference, result, reference_trace, trace):
    __tracebackhide__ = True
    assert [
        (item.object_id, item.grade) for item in result.answers
    ] == [(item.object_id, item.grade) for item in reference.answers], label
    assert result.cost == reference.cost, label
    assert result.sorted_depth == reference.sorted_depth, label
    assert result.grades_exact == reference.grades_exact, label
    assert trace == reference_trace, label


def pick_rule(m, index):
    rules = (tnorms.MIN, tnorms.PRODUCT, means.MEAN)
    return rules[index % len(rules)]


@settings(deadline=None, max_examples=12)
@given(
    graded_databases(),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=2),
)
def test_backends_are_byte_identical(database, rule_index, selector):
    table, m = database
    rule = pick_rule(m, rule_index)
    k = (1, len(table), len(table) + 2)[selector]
    for name, algorithm in ALGORITHMS:
        reference, reference_trace = run_once(
            algorithm, table, rule, k,
            backend="array", shards=1, kernel="scalar",
        )
        for label, backend, shards in LAYOUTS:
            result, trace = run_once(
                algorithm, table, rule, k,
                backend=backend, shards=shards, kernel="scalar",
            )
            assert_identical(
                f"{name}/{label}", reference, result, reference_trace, trace
            )


@settings(deadline=None, max_examples=6)
@given(graded_databases(), st.integers(min_value=0, max_value=2))
def test_backends_kernels_workers_commute(database, rule_index):
    """layout x kernel x workers: every combination produces the same
    bytes as the monolithic scalar serial reference."""
    table, m = database
    rule = pick_rule(m, rule_index)
    k = min(len(table), 5)
    for name, algorithm in ALGORITHMS:
        reference, reference_trace = run_once(
            algorithm, table, rule, k,
            backend="array", shards=1, kernel="scalar",
        )
        for label, backend, shards in (
            ("memmap", "memmap", 1),
            ("sharded-k2", "array", 2),
            ("sharded-k5", "array", 5),
        ):
            for kernel in ("scalar", "vector"):
                for workers in (1, 4):
                    result, trace = run_once(
                        algorithm, table, rule, k,
                        backend=backend, shards=shards,
                        kernel=kernel, workers=workers,
                    )
                    assert_identical(
                        f"{name}/{label}/{kernel}/workers={workers}",
                        reference, result, reference_trace, trace,
                    )
