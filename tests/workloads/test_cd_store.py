"""The CD-store workload and engine builder."""

import pytest

from repro.core.query import Atomic
from repro.workloads.cd_store import build_store, generate_catalog


def test_catalog_shape_and_determinism():
    catalog = generate_catalog(200, seed=1)
    assert len(catalog) == 200
    assert len({album.album_id for album in catalog}) == 200
    again = generate_catalog(200, seed=1)
    assert [a.album_id for a in again] == [a.album_id for a in catalog]


def test_beatles_fraction_controls_selectivity():
    catalog = generate_catalog(400, seed=2, beatles_fraction=0.1)
    beatles = [a for a in catalog if a.artist == "Beatles"]
    assert len(beatles) == 40
    with pytest.raises(ValueError):
        generate_catalog(10, beatles_fraction=2.0)


def test_prices_and_years_in_range():
    for album in generate_catalog(100, seed=3):
        assert 1955 <= album.year <= 1998
        assert 5.0 <= album.price <= 25.0
        assert all(0.0 <= c <= 1.0 for c in album.cover_color)


def test_engine_answers_the_papers_query():
    catalog = generate_catalog(300, seed=4)
    engine = build_store(catalog)
    query = Atomic("Artist", "Beatles") & Atomic("AlbumColor", "red")
    result = engine.top_k(query, 5)
    beatles_ids = {a.album_id for a in catalog if a.artist == "Beatles"}
    for item in result.answers:
        if item.grade > 0:
            assert item.object_id in beatles_ids


def test_engine_color_lists_are_graded_by_closeness():
    catalog = generate_catalog(100, seed=5)
    engine = build_store(catalog)
    source = engine.bind(Atomic("AlbumColor", "red"))
    by_id = {a.album_id: a for a in catalog}
    graded = source.as_graded_set()
    items = list(graded)
    # the best-ranked album is redder than the worst-ranked one
    reddest = by_id[items[0].object_id].cover_color
    least = by_id[items[-1].object_id].cover_color
    assert reddest[0] - max(reddest[1], reddest[2]) > least[0] - max(
        least[1], least[2]
    ) - 0.5


def test_custom_query_colors():
    engine = build_store(generate_catalog(50, seed=6), query_colors=("purple",))
    assert engine.bind(Atomic("AlbumColor", "purple"))
    from repro.errors import PlanError

    with pytest.raises(PlanError):
        engine.bind(Atomic("AlbumColor", "red"))
