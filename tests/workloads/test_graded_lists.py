"""Synthetic graded-list generators."""

import statistics

import pytest

from repro.workloads.graded_lists import (
    anti_correlated,
    boolean_column,
    correlated,
    independent,
    make_sources,
    workload,
)


def test_independent_shape_and_determinism():
    table = independent(100, 3, seed=5)
    assert len(table) == 100
    assert all(len(v) == 3 for v in table.values())
    assert table == independent(100, 3, seed=5)
    assert table != independent(100, 3, seed=6)


def test_independent_grades_roughly_uniform():
    table = independent(2000, 1, seed=1)
    grades = [v[0] for v in table.values()]
    assert statistics.fmean(grades) == pytest.approx(0.5, abs=0.05)


def test_correlated_lists_agree():
    table = correlated(500, 2, seed=2, noise=0.05)
    diffs = [abs(a - b) for a, b in table.values()]
    assert statistics.fmean(diffs) < 0.1


def test_correlated_noise_validated():
    with pytest.raises(ValueError):
        correlated(10, 2, noise=2.0)


def test_anti_correlated_sums_are_flat():
    table = anti_correlated(500, 2, seed=3)
    sums = [sum(v) for v in table.values()]
    assert statistics.pstdev(sums) < 0.15
    assert statistics.fmean(sums) == pytest.approx(1.0, abs=0.1)


def test_boolean_column_selectivity():
    column = boolean_column(1000, 0.05, seed=4)
    assert sum(column.values()) == 50
    assert set(column.values()) <= {0.0, 1.0}
    with pytest.raises(ValueError):
        boolean_column(100, 1.5)


def test_make_sources_columns():
    sources = make_sources(independent(50, 2, seed=7))
    assert len(sources) == 2
    assert len(sources[0]) == 50


def test_workload_dispatch():
    for kind in ("independent", "correlated", "anti-correlated"):
        sources = workload(kind, 30, 2, seed=1)
        assert len(sources) == 2
    reversed_sources = workload("reversed", 21, 2)
    assert len(reversed_sources[0]) == 21


def test_workload_validation():
    with pytest.raises(ValueError):
        workload("mystery", 10, 2)
    with pytest.raises(ValueError):
        workload("reversed", 10, 3)


def test_zipf_is_heavy_tailed():
    from repro.workloads.graded_lists import zipf_skewed

    table = zipf_skewed(1000, 1, seed=5)
    grades = sorted((v[0] for v in table.values()), reverse=True)
    # the best grade is 1, the median is tiny
    assert grades[0] == pytest.approx(1.0)
    assert grades[500] < 0.01
    with pytest.raises(ValueError):
        zipf_skewed(10, 1, exponent=0.0)


def test_zipf_workload_dispatch_and_algorithms_agree():
    from repro.core.fagin import fagin_top_k
    from repro.core.naive import grade_everything
    from repro.scoring import tnorms
    from repro.workloads.graded_lists import workload

    sources = workload("zipf", 400, 2, seed=1)
    result = fagin_top_k(sources, tnorms.MIN, 5)
    expected = grade_everything(workload("zipf", 400, 2, seed=1), tnorms.MIN).top(5)
    assert result.answers.same_grade_multiset(expected)
