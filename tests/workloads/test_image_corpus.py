"""Image corpus builders and the advertisements scenario."""

import pytest

from repro.core.query import Atomic
from repro.multimedia.histogram import Palette
from repro.workloads.image_corpus import (
    advertisements_scenario,
    build_image_database,
    corpus_histograms,
    mixed_corpus,
)


def test_mixed_corpus_size_and_determinism():
    corpus = mixed_corpus(30, seed=1)
    assert len(corpus) == 30
    assert [i.image_id for i in corpus] == [i.image_id for i in mixed_corpus(30, seed=1)]


def test_corpus_histograms_are_distributions():
    palette = Palette.rgb_cube(3)
    histograms = corpus_histograms(mixed_corpus(10, seed=2), palette)
    assert len(histograms) == 10
    for histogram in histograms.values():
        assert histogram.sum() == pytest.approx(1.0)


def test_image_database_answers_mixed_queries():
    engine = build_image_database(40, seed=3)
    query = Atomic("Category", "product") & Atomic("Color", "red")
    result = engine.top_k(query, 5)
    assert len(result.answers) == 5


def test_advertisements_scenario_structure():
    photos, containment = advertisements_scenario(10, photos_per_ad=3, seed=4)
    assert len(containment) == 10
    for ad in containment.parents():
        assert len(containment.children_of(ad)) == 3
    photo_ids = {p.image_id for p in photos}
    for ad in containment.parents():
        for child in containment.children_of(ad):
            assert child in photo_ids


def test_advertisements_share_photos():
    _, containment = advertisements_scenario(
        40, photos_per_ad=3, seed=5, shared_fraction=0.5
    )
    assert containment.shared_children()


def test_advertisements_validation():
    with pytest.raises(ValueError):
        advertisements_scenario(5, photos_per_ad=0)
