"""The Eq. 2 distance-bounding filter: soundness and effectiveness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.multimedia.filter import (
    DistanceBoundingFilter,
    linear_scan_knn,
)
from repro.multimedia.histogram import Palette, QuadraticFormDistance
from repro.multimedia.images import ImageGenerator
from repro.multimedia.similarity import laplacian_similarity, qbic_similarity
from repro.workloads.image_corpus import corpus_histograms


@pytest.fixture(scope="module")
def setup():
    palette = Palette.rgb_cube(4)
    distance = QuadraticFormDistance(laplacian_similarity(palette))
    filt = DistanceBoundingFilter(palette, distance)
    corpus = ImageGenerator(11).corpus(80, themed_fraction=0.3)
    histograms = corpus_histograms(corpus, palette)
    return palette, distance, filt, histograms


def random_histograms(k, count, seed):
    rng = np.random.default_rng(seed)
    raw = rng.random((count, k))
    return raw / raw.sum(axis=1, keepdims=True)


def test_short_vector_is_three_dimensional(setup):
    palette, _, filt, histograms = setup
    short = filt.summarize(next(iter(histograms.values())))
    assert short.shape == (3,)


def test_lower_bound_never_exceeds_true_distance_on_corpus(setup):
    """Eq. 2: d^(x^, y^) <= d(x, y), with no exceptions."""
    _, distance, filt, histograms = setup
    items = list(histograms.values())[:25]
    shorts = [filt.summarize(h) for h in items]
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            true = distance(items[i], items[j])
            bound = filt.lower_bound(shorts[i], shorts[j])
            assert bound <= true + 1e-9


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_lower_bound_holds_on_random_histograms(seed):
    palette = Palette.rgb_cube(3)
    distance = QuadraticFormDistance(laplacian_similarity(palette))
    filt = DistanceBoundingFilter(palette, distance)
    x, y = random_histograms(palette.k, 2, seed)
    bound = filt.lower_bound(filt.summarize(x), filt.summarize(y))
    assert bound <= distance(x, y) + 1e-9


def test_bound_holds_for_ridged_qbic_matrix():
    palette = Palette.rgb_cube(3)
    distance = QuadraticFormDistance(qbic_similarity(palette, ridge=1e-4))
    filt = DistanceBoundingFilter(palette, distance)
    for seed in range(5):
        x, y = random_histograms(palette.k, 2, seed)
        assert filt.lower_bound(
            filt.summarize(x), filt.summarize(y)
        ) <= distance(x, y) + 1e-9


def test_singular_similarity_rejected():
    palette = Palette.rgb_cube(3)
    distance = QuadraticFormDistance(qbic_similarity(palette))  # PSD, singular
    if distance.min_eigenvalue < 1e-10:
        with pytest.raises(IndexError_):
            DistanceBoundingFilter(palette, distance)


def test_search_matches_linear_scan_exactly(setup):
    """No false dismissals: the filtered result equals the full scan's."""
    _, distance, filt, histograms = setup
    target = next(iter(histograms.values()))
    filtered = filt.search(histograms, target, 10)
    scan = linear_scan_knn(histograms, target, 10, distance)
    assert sorted(d for _, d in filtered.neighbors) == pytest.approx(
        sorted(d for _, d in scan)
    )


def test_search_prunes_a_meaningful_fraction(setup):
    """With a concentrated target (a query color with planted near
    matches), the k-th distance is small and the bound prunes most of
    the corpus; the guarantee itself is exercised separately above."""
    palette, _, filt, histograms = setup
    from repro.multimedia.histogram import solid_color_histogram

    target = solid_color_histogram((0.9, 0.1, 0.1), palette)
    result = filt.search(histograms, target, 5)
    assert result.pruned > 0
    assert result.full_evaluations + result.pruned == len(histograms)
    assert result.pruning_rate > 0.2


def test_search_handles_small_k_and_empty_corpus(setup):
    _, _, filt, histograms = setup
    target = next(iter(histograms.values()))
    assert len(filt.search(histograms, target, 1).neighbors) == 1
    assert filt.search({}, target, 3).neighbors == []
    with pytest.raises(ValueError):
        filt.search(histograms, target, 0)


def test_mismatched_palette_and_distance_rejected():
    palette = Palette.rgb_cube(3)
    other = Palette.rgb_cube(4)
    distance = QuadraticFormDistance(laplacian_similarity(other))
    with pytest.raises(IndexError_):
        DistanceBoundingFilter(palette, distance)


def test_linear_scan_validates_k(setup):
    _, distance, _, histograms = setup
    with pytest.raises(ValueError):
        linear_scan_knn(histograms, next(iter(histograms.values())), 0, distance)
