"""Synthetic image model: shapes, masks, boundaries, generators."""

import math

import numpy as np
import pytest

from repro.multimedia.images import (
    NAMED_COLORS,
    SHAPE_KINDS,
    ImageGenerator,
    ShapeSpec,
    SyntheticImage,
)


def spec(kind="circle", **kw):
    defaults = dict(center=(0.5, 0.5), size=0.5, color=(1.0, 0.0, 0.0))
    defaults.update(kw)
    return ShapeSpec(kind=kind, **defaults)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        spec(kind="hexagon")


def test_size_validated():
    with pytest.raises(ValueError):
        spec(size=0.0)
    with pytest.raises(ValueError):
        spec(size=1.5)


@pytest.mark.parametrize("kind", SHAPE_KINDS)
def test_mask_is_nonempty_and_inside_canvas(kind):
    mask = spec(kind=kind).mask(32)
    assert mask.shape == (32, 32)
    assert mask.any()
    assert mask.sum() < 32 * 32  # the shape doesn't cover everything


def test_circle_mask_area_matches_formula():
    mask = spec(kind="circle", size=0.5).mask(256)
    area = mask.sum() / 256**2
    assert area == pytest.approx(math.pi * 0.25**2, rel=0.02)


def test_square_mask_area_matches_formula():
    mask = spec(kind="square", size=0.5).mask(256)
    assert mask.sum() / 256**2 == pytest.approx(0.25, rel=0.02)


def test_rotation_preserves_area():
    straight = spec(kind="square").mask(256).sum()
    rotated = spec(kind="square", rotation=0.7).mask(256).sum()
    assert rotated == pytest.approx(straight, rel=0.03)


@pytest.mark.parametrize("kind", SHAPE_KINDS)
def test_boundary_has_requested_samples(kind):
    boundary = spec(kind=kind).boundary(48)
    assert boundary.shape == (48, 2)


def test_boundary_points_lie_on_circle():
    boundary = spec(kind="circle", size=0.6).boundary(64)
    radii = np.linalg.norm(boundary - np.array([0.5, 0.5]), axis=1)
    assert np.allclose(radii, 0.3, atol=1e-9)


def test_boundary_respects_rotation():
    base = spec(kind="rectangle", aspect=0.5).boundary(32)
    rotated = spec(kind="rectangle", aspect=0.5, rotation=math.pi / 2).boundary(32)
    center = np.array([0.5, 0.5])
    # rotating by 90 degrees maps the point set onto itself rotated
    expected = (base - center) @ np.array([[0.0, 1.0], [-1.0, 0.0]]) + center
    assert np.allclose(sorted(map(tuple, rotated)), sorted(map(tuple, expected)), atol=1e-9)


def test_rasterize_shapes_paint_over_background():
    image = SyntheticImage(
        "img", background=(0.0, 0.0, 1.0), shapes=(spec(kind="circle"),)
    )
    raster = image.rasterize(32)
    assert raster.shape == (32, 32, 3)
    center_pixel = raster[16, 16]
    assert tuple(center_pixel) == (1.0, 0.0, 0.0)  # shape color
    corner_pixel = raster[0, 0]
    assert tuple(corner_pixel) == (0.0, 0.0, 1.0)  # background


def test_later_shapes_occlude_earlier():
    image = SyntheticImage(
        "img",
        background=(0, 0, 0),
        shapes=(
            spec(kind="circle", color=(1, 0, 0)),
            spec(kind="circle", color=(0, 1, 0)),
        ),
    )
    assert tuple(image.rasterize(16)[8, 8]) == (0, 1, 0)


def test_dominant_shape():
    small = spec(size=0.2)
    big = spec(size=0.5)
    image = SyntheticImage("img", (0, 0, 0), (small, big))
    assert image.dominant_shape() is big
    assert SyntheticImage("plain", (0, 0, 0)).dominant_shape() is None


def test_generator_is_deterministic():
    a = ImageGenerator(7).corpus(10)
    b = ImageGenerator(7).corpus(10)
    assert [i.image_id for i in a] == [i.image_id for i in b]
    assert a[0].background == b[0].background


def test_themed_images_are_near_the_theme_color():
    generator = ImageGenerator(3)
    red = NAMED_COLORS["red"]
    for i in range(10):
        image = generator.themed(f"t{i}", "red")
        assert abs(image.background[0] - red[0]) <= 0.19


def test_corpus_mixes_and_shuffles():
    corpus = ImageGenerator(1).corpus(20, themed_fraction=0.5, theme="blue")
    assert len(corpus) == 20
    assert len({img.image_id for img in corpus}) == 20
