"""Hypothesis-driven invariants of the color pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.multimedia.histogram import (
    Palette,
    QuadraticFormDistance,
    color_histogram,
)
from repro.multimedia.similarity import laplacian_similarity

PALETTE = Palette.rgb_cube(3)
DISTANCE = QuadraticFormDistance(laplacian_similarity(PALETTE))


def rasters(size=6):
    return st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            st.floats(min_value=0, max_value=1, allow_nan=False),
            st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
        min_size=size * size,
        max_size=size * size,
    ).map(lambda pixels: np.array(pixels).reshape(size, size, 3))


@given(raster=rasters())
@settings(max_examples=30, deadline=None)
def test_histogram_is_a_distribution(raster):
    histogram = color_histogram(raster, PALETTE)
    assert histogram.shape == (PALETTE.k,)
    assert histogram.sum() == pytest.approx(1.0)
    assert (histogram >= 0).all()


@given(raster=rasters(), seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_histogram_invariant_under_pixel_permutation(raster, seed):
    """A histogram sees colors, not layout: shuffling pixels changes
    nothing."""
    rng = np.random.default_rng(seed)
    pixels = raster.reshape(-1, 3)
    shuffled = pixels[rng.permutation(len(pixels))].reshape(raster.shape)
    assert np.allclose(
        color_histogram(raster, PALETTE), color_histogram(shuffled, PALETTE)
    )


@given(raster=rasters())
@settings(max_examples=30, deadline=None)
def test_distance_to_self_is_zero(raster):
    histogram = color_histogram(raster, PALETTE)
    assert DISTANCE(histogram, histogram) == pytest.approx(0.0, abs=1e-9)


@given(a=rasters(), b=rasters(), c=rasters())
@settings(max_examples=20, deadline=None)
def test_triangle_inequality_on_histograms(a, b, c):
    ha = color_histogram(a, PALETTE)
    hb = color_histogram(b, PALETTE)
    hc = color_histogram(c, PALETTE)
    assert DISTANCE(ha, hc) <= DISTANCE(ha, hb) + DISTANCE(hb, hc) + 1e-9


@given(raster=rasters())
@settings(max_examples=20, deadline=None)
def test_upscaling_preserves_histogram(raster):
    """Repeating every pixel 2x2 leaves the color distribution intact."""
    upscaled = np.repeat(np.repeat(raster, 2, axis=0), 2, axis=1)
    assert np.allclose(
        color_histogram(raster, PALETTE), color_histogram(upscaled, PALETTE)
    )
