"""The QBIC-style subsystem: atomic queries over a synthetic corpus."""

import numpy as np
import pytest

from repro.core.query import Atomic
from repro.errors import PlanError
from repro.multimedia.images import ImageGenerator, SyntheticImage, ShapeSpec
from repro.multimedia.qbic import QbicSubsystem, reference_boundary


@pytest.fixture(scope="module")
def qbic():
    generator = ImageGenerator(42)
    corpus = generator.corpus(40, themed_fraction=0.3, theme="red")
    # plant one guaranteed round-dominant image and one square-dominant
    corpus.append(
        SyntheticImage(
            "planted-round",
            background=(0.2, 0.2, 0.2),
            shapes=(ShapeSpec("circle", (0.5, 0.5), 0.5, (0.9, 0.1, 0.1)),),
        )
    )
    corpus.append(
        SyntheticImage(
            "planted-square",
            background=(0.2, 0.2, 0.2),
            shapes=(ShapeSpec("square", (0.5, 0.5), 0.5, (0.1, 0.1, 0.9)),),
        )
    )
    return QbicSubsystem("qbic", corpus)


def test_attributes(qbic):
    assert qbic.attributes() == {"Color", "Shape", "Texture"}
    assert len(qbic) == 42


def test_duplicate_image_ids_rejected():
    image = ImageGenerator(0).random_image("dup")
    with pytest.raises(PlanError):
        QbicSubsystem("broken", [image, image])


def test_color_query_by_name(qbic):
    source = qbic.bind(Atomic("Color", "red"))
    assert len(source) == 42
    graded = source.as_graded_set()
    # the reddest images must outrank blue-planted one
    assert graded.grade("planted-round") > graded.grade("planted-square")


def test_color_query_by_rgb_triple(qbic):
    by_name = qbic.bind(Atomic("Color", "blue")).as_graded_set()
    from repro.multimedia.images import NAMED_COLORS

    by_rgb = qbic.bind(Atomic("Color", NAMED_COLORS["blue"])).as_graded_set()
    assert by_name.grades_equal(by_rgb)


def test_color_query_by_image_id_is_reflexive(qbic):
    source = qbic.bind(Atomic("Color", "planted-round"))
    graded = source.as_graded_set()
    assert graded.best().object_id == "planted-round"
    assert graded.best().grade == pytest.approx(1.0)


def test_color_query_by_histogram(qbic):
    histogram = qbic.histogram_of("planted-square")
    graded = qbic.bind(Atomic("Color", histogram)).as_graded_set()
    assert graded.best().object_id == "planted-square"


def test_color_query_invalid_targets(qbic):
    with pytest.raises(PlanError):
        qbic.bind(Atomic("Color", "no-such-color"))
    with pytest.raises(PlanError):
        qbic.bind(Atomic("Color", np.zeros(7)))


def test_shape_round_ranks_planted_circle_first(qbic):
    graded = qbic.bind(Atomic("Shape", "round")).as_graded_set()
    top_ids = [item.object_id for item in graded.top(3)]
    assert "planted-round" in top_ids
    assert graded.grade("planted-round") > graded.grade("planted-square")


def test_shape_square_prefers_planted_square(qbic):
    graded = qbic.bind(Atomic("Shape", "square")).as_graded_set()
    assert graded.grade("planted-square") > graded.grade("planted-round")


def test_shape_query_by_polygon(qbic):
    polygon = reference_boundary("triangle")
    graded = qbic.bind(Atomic("Shape", polygon)).as_graded_set()
    assert len(graded) == 42


def test_shape_query_invalid_target(qbic):
    with pytest.raises(PlanError):
        qbic.bind(Atomic("Shape", "dodecahedron"))
    with pytest.raises(PlanError):
        qbic.bind(Atomic("Shape", np.zeros((4, 3))))


def test_texture_query_by_name_and_vector(qbic):
    by_name = qbic.bind(Atomic("Texture", "smooth")).as_graded_set()
    by_vector = qbic.bind(
        Atomic("Texture", np.array([0.0, 0.05, 0.1]))
    ).as_graded_set()
    assert by_name.grades_equal(by_vector)
    with pytest.raises(PlanError):
        qbic.bind(Atomic("Texture", "fluffy"))


def test_invalid_shape_method_rejected():
    with pytest.raises(PlanError):
        QbicSubsystem("q", [], shape_method="psychic")


def test_reference_boundary_unknown_name():
    with pytest.raises(PlanError):
        reference_boundary("blob")
