"""Synthetic video: animation, motion energy, and the video subsystem."""

import numpy as np
import pytest

from repro.core.query import Atomic
from repro.errors import PlanError
from repro.multimedia.images import ShapeSpec, SyntheticImage
from repro.multimedia.video import (
    NAMED_MOTION,
    VideoClip,
    VideoGenerator,
    VideoSubsystem,
    color_signature,
    motion_energy,
)
from repro.multimedia.histogram import Palette


def still_clip(clip_id="still"):
    base = SyntheticImage(
        clip_id,
        background=(0.2, 0.2, 0.8),
        shapes=(ShapeSpec("circle", (0.5, 0.5), 0.4, (0.9, 0.1, 0.1)),),
    )
    return VideoClip(clip_id, base, ((0.0, 0.0),))


def moving_clip(clip_id="moving", speed=0.08):
    base = SyntheticImage(
        clip_id,
        background=(0.2, 0.2, 0.8),
        shapes=(ShapeSpec("circle", (0.3, 0.3), 0.4, (0.9, 0.1, 0.1)),),
    )
    return VideoClip(clip_id, base, ((speed, speed / 2),))


def test_clip_validation():
    base = still_clip().base
    with pytest.raises(PlanError):
        VideoClip("bad", base, ())  # velocity count mismatch
    with pytest.raises(PlanError):
        VideoClip("bad", base, ((0.0, 0.0),), frame_count=1)


def test_frames_animate_shapes():
    clip = moving_clip()
    first = clip.frame(0)
    last = clip.frame(clip.frame_count - 1)
    assert first.shapes[0].center != last.shapes[0].center
    assert len(clip.frames(16)) == clip.frame_count


def test_still_clip_frames_are_identical():
    clip = still_clip()
    rasters = clip.frames(16)
    assert all(np.array_equal(rasters[0], r) for r in rasters[1:])


def test_motion_energy_separates_still_from_moving():
    assert motion_energy(still_clip()) == pytest.approx(0.0)
    assert motion_energy(moving_clip()) > 0.2


def test_faster_motion_scores_higher():
    slow = motion_energy(moving_clip("slow", speed=0.02))
    fast = motion_energy(moving_clip("fast", speed=0.12))
    assert fast > slow


def test_color_signature_is_a_distribution():
    palette = Palette.rgb_cube(3)
    signature = color_signature(moving_clip(), palette)
    assert signature.shape == (27,)
    assert signature.sum() == pytest.approx(1.0)


def test_generator_corpus_mixes_still_and_moving():
    clips = VideoGenerator(5).corpus(12, still_fraction=0.25)
    assert len(clips) == 12
    energies = [motion_energy(clip) for clip in clips[:3]]
    assert all(e == pytest.approx(0.0) for e in energies)


@pytest.fixture(scope="module")
def subsystem():
    clips = VideoGenerator(7).corpus(20, still_fraction=0.3)
    clips.append(still_clip("planted-still"))
    clips.append(moving_clip("planted-moving", speed=0.1))
    return VideoSubsystem("video", clips)


def test_subsystem_attributes(subsystem):
    assert subsystem.attributes() == {"ClipColor", "MotionEnergy"}
    assert len(subsystem) == 22


def test_motion_query_still(subsystem):
    graded = subsystem.bind(Atomic("MotionEnergy", "still")).as_graded_set()
    assert graded.grade("planted-still") > graded.grade("planted-moving")


def test_motion_query_numeric_target(subsystem):
    energy = subsystem.motion_of("planted-moving")
    graded = subsystem.bind(Atomic("MotionEnergy", energy)).as_graded_set()
    assert graded.best().object_id == "planted-moving"


def test_clip_color_query_by_name_and_example(subsystem):
    by_name = subsystem.bind(Atomic("ClipColor", "red")).as_graded_set()
    assert len(by_name) == 22
    by_example = subsystem.bind(
        Atomic("ClipColor", "planted-still")
    ).as_graded_set()
    assert by_example.best().object_id == "planted-still"


def test_invalid_targets(subsystem):
    with pytest.raises(PlanError):
        subsystem.bind(Atomic("MotionEnergy", "warp-speed"))
    with pytest.raises(PlanError):
        subsystem.bind(Atomic("MotionEnergy", 3.0))
    with pytest.raises(PlanError):
        subsystem.bind(Atomic("ClipColor", "no-such-thing"))


def test_duplicate_clip_ids_rejected():
    clip = still_clip("dup")
    with pytest.raises(PlanError):
        VideoSubsystem("broken", [clip, clip])


def test_video_in_middleware_conjunction(subsystem):
    """Red AND still: the full stack over video clips."""
    from repro.middleware.engine import MiddlewareEngine

    engine = MiddlewareEngine()
    engine.register(subsystem)
    query = Atomic("ClipColor", "red") & Atomic("MotionEnergy", "still")
    result = engine.top_k(query, 3)
    assert len(result.answers) == 3


def test_named_motion_levels_in_range():
    for level in NAMED_MOTION.values():
        assert 0.0 <= level <= 1.0
