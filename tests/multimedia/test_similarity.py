"""Similarity matrix constructions for Eq. 1."""

import numpy as np
import pytest

from repro.multimedia.histogram import Palette
from repro.multimedia.similarity import (
    identity_similarity,
    laplacian_similarity,
    qbic_similarity,
)


@pytest.fixture(scope="module")
def palette():
    return Palette.rgb_cube(3)


def eigenvalues(matrix):
    return np.linalg.eigvalsh(matrix)


def test_laplacian_is_symmetric_psd_with_unit_diagonal(palette):
    matrix = laplacian_similarity(palette)
    assert np.allclose(matrix, matrix.T)
    assert eigenvalues(matrix).min() > 0  # strictly PD for distinct colors
    assert np.allclose(np.diag(matrix), 1.0)


def test_laplacian_alpha_controls_coupling(palette):
    tight = laplacian_similarity(palette, alpha=20.0)
    loose = laplacian_similarity(palette, alpha=1.0)
    off_diag = ~np.eye(palette.k, dtype=bool)
    assert tight[off_diag].mean() < loose[off_diag].mean()


def test_laplacian_similar_colors_score_higher(palette):
    matrix = laplacian_similarity(palette)
    centers = palette.centers
    distances = np.linalg.norm(centers[0] - centers, axis=1)
    nearest = np.argsort(distances)[1]
    farthest = np.argsort(distances)[-1]
    assert matrix[0, nearest] > matrix[0, farthest]


def test_laplacian_validates_alpha(palette):
    with pytest.raises(ValueError):
        laplacian_similarity(palette, alpha=0.0)


def test_qbic_matrix_is_psd_after_repair(palette):
    matrix = qbic_similarity(palette)
    assert eigenvalues(matrix).min() >= -1e-9
    assert np.allclose(np.diag(matrix), 1.0)


def test_qbic_ridge_makes_it_positive_definite(palette):
    matrix = qbic_similarity(palette, ridge=1e-4)
    assert eigenvalues(matrix).min() > 0


def test_qbic_validates_ridge(palette):
    with pytest.raises(ValueError):
        qbic_similarity(palette, ridge=-1.0)


def test_identity_similarity(palette):
    assert np.array_equal(identity_similarity(palette), np.eye(palette.k))
