"""Color histograms and the Eq. 1 quadratic-form distance."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.multimedia.histogram import (
    Palette,
    QuadraticFormDistance,
    color_histogram,
    distance_to_grade,
    solid_color_histogram,
)
from repro.multimedia.images import ImageGenerator
from repro.multimedia.similarity import identity_similarity, laplacian_similarity


def test_rgb_cube_palette_size():
    assert Palette.rgb_cube(4).k == 64
    assert Palette.rgb_cube(5).k == 125


def test_hue_wheel_palette_arbitrary_k():
    assert Palette.hue_wheel(100).k == 100
    assert Palette.hue_wheel(256).k == 256


def test_palette_validation():
    with pytest.raises(IndexError_):
        Palette(np.zeros((3, 2)))
    with pytest.raises(IndexError_):
        Palette.rgb_cube(1)


def test_assign_picks_nearest_center():
    palette = Palette(np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))
    pixels = np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.95]])
    assert list(palette.assign(pixels)) == [0, 1]


def test_histogram_sums_to_one_and_has_k_bins():
    palette = Palette.rgb_cube(4)
    raster = ImageGenerator(0).random_image("x").rasterize(32)
    histogram = color_histogram(raster, palette)
    assert histogram.shape == (64,)
    assert histogram.sum() == pytest.approx(1.0)
    assert (histogram >= 0).all()


def test_histogram_of_solid_image_is_a_delta():
    palette = Palette.rgb_cube(4)
    raster = np.full((8, 8, 3), 0.9)
    histogram = color_histogram(raster, palette)
    assert np.count_nonzero(histogram) == 1


def test_solid_color_histogram_matches_rasterized_solid():
    palette = Palette.rgb_cube(4)
    direct = solid_color_histogram((0.9, 0.1, 0.1), palette)
    via_raster = color_histogram(np.full((4, 4, 3), (0.9, 0.1, 0.1)), palette)
    assert np.allclose(direct, via_raster)


def test_histogram_validates_raster_shape():
    with pytest.raises(IndexError_):
        color_histogram(np.zeros((4, 4)), Palette.rgb_cube(4))


# ----------------------------------------------------------------------
# QuadraticFormDistance (Eq. 1)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def palette():
    return Palette.rgb_cube(3)  # k = 27, fast


@pytest.fixture(scope="module")
def qf(palette):
    return QuadraticFormDistance(laplacian_similarity(palette))


def random_histograms(palette, count, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.random((count, palette.k))
    return raw / raw.sum(axis=1, keepdims=True)


def test_distance_is_zero_on_identical(qf, palette):
    x = random_histograms(palette, 1)[0]
    assert qf(x, x) == pytest.approx(0.0, abs=1e-9)


def test_distance_is_symmetric(qf, palette):
    x, y = random_histograms(palette, 2, seed=1)
    assert qf(x, y) == pytest.approx(qf(y, x))


def test_triangle_inequality(qf, palette):
    x, y, z = random_histograms(palette, 3, seed=2)
    assert qf(x, z) <= qf(x, y) + qf(y, z) + 1e-9


def test_identity_similarity_gives_euclidean(palette):
    qf = QuadraticFormDistance(identity_similarity(palette))
    x, y = random_histograms(palette, 2, seed=3)
    assert qf(x, y) == pytest.approx(float(np.linalg.norm(x - y)))


def test_cross_bin_coupling_shrinks_distances(palette):
    """Similar colors in different bins: A-coupled distance <= Euclidean
    (the 'red is close to pink' effect)."""
    coupled = QuadraticFormDistance(laplacian_similarity(palette, alpha=2.0))
    plain = QuadraticFormDistance(identity_similarity(palette))
    for x, y in zip(
        random_histograms(palette, 5, seed=4), random_histograms(palette, 5, seed=5)
    ):
        assert coupled(x, y) <= plain(x, y) + 1e-9


def test_pairwise_matches_individual(qf, palette):
    hists = random_histograms(palette, 6, seed=6)
    matrix = qf.pairwise(hists)
    assert matrix.shape == (6, 6)
    for i in range(6):
        for j in range(6):
            assert matrix[i, j] == pytest.approx(qf(hists[i], hists[j]), abs=1e-9)


def test_distance_validates_shape(qf):
    with pytest.raises(IndexError_):
        qf(np.zeros(5), np.zeros(5))


def test_asymmetric_matrix_rejected():
    bad = np.array([[1.0, 0.5], [0.2, 1.0]])
    with pytest.raises(IndexError_):
        QuadraticFormDistance(bad)


def test_indefinite_matrix_rejected():
    bad = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
    with pytest.raises(IndexError_):
        QuadraticFormDistance(bad)


# ----------------------------------------------------------------------
# distance_to_grade
# ----------------------------------------------------------------------
def test_grade_bridge_properties():
    assert distance_to_grade(0.0) == 1.0
    assert distance_to_grade(1.0, scale=1.0) == pytest.approx(np.exp(-1))
    assert distance_to_grade(0.5) > distance_to_grade(1.0)
    with pytest.raises(ValueError):
        distance_to_grade(1.0, scale=0.0)
