"""Texture features: ranges, discrimination, named targets."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.multimedia.texture import (
    NAMED_TEXTURES,
    coarseness,
    contrast,
    directionality,
    texture_distance,
    texture_features,
    to_grayscale,
)


def checkerboard(cell=2, size=32):
    ys, xs = np.mgrid[:size, :size]
    pattern = ((xs // cell + ys // cell) % 2).astype(float)
    return np.stack([pattern] * 3, axis=-1)


def stripes(size=32):
    xs = np.arange(size)
    pattern = np.tile((xs % 4 < 2).astype(float), (size, 1))
    return np.stack([pattern] * 3, axis=-1)


def flat(value=0.5, size=32):
    return np.full((size, size, 3), value)


def test_grayscale_shape_and_weights():
    gray = to_grayscale(flat(0.5))
    assert gray.shape == (32, 32)
    assert gray[0, 0] == pytest.approx(0.5)
    with pytest.raises(IndexError_):
        to_grayscale(np.zeros((4, 4)))


def test_flat_image_has_no_texture():
    gray = to_grayscale(flat())
    assert coarseness(gray) == 0.0
    assert contrast(gray) == 0.0
    assert directionality(gray) == 0.0


def test_coarse_pattern_scores_coarser_than_fine():
    fine = coarseness(to_grayscale(checkerboard(cell=2)))
    coarse = coarseness(to_grayscale(checkerboard(cell=8)))
    assert coarse > fine


def test_contrast_orders_by_intensity_spread():
    low = contrast(to_grayscale(flat() + 0.05 * checkerboard()))
    high = contrast(to_grayscale(checkerboard()))
    assert high > low


def test_stripes_are_more_directional_than_checkerboard():
    striped = directionality(to_grayscale(stripes()))
    checked = directionality(to_grayscale(checkerboard()))
    assert striped > checked


def test_features_vector_in_unit_cube():
    features = texture_features(checkerboard())
    assert features.shape == (3,)
    assert (features >= 0).all() and (features <= 1).all()


def test_texture_distance_identity_and_symmetry():
    a = texture_features(checkerboard())
    b = texture_features(stripes())
    assert texture_distance(a, a) == 0.0
    assert texture_distance(a, b) == pytest.approx(texture_distance(b, a))
    with pytest.raises(IndexError_):
        texture_distance(a, np.zeros(2))


def test_named_textures_are_valid_targets():
    for name, features in NAMED_TEXTURES.items():
        assert features.shape == (3,)
        assert (features >= 0).all() and (features <= 1).all()
