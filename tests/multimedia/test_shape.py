"""Shape distances: identity, invariances, discrimination."""

import math

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.multimedia.images import ShapeSpec
from repro.multimedia.shape import (
    SHAPE_DISTANCES,
    fourier_descriptor_distance,
    fourier_descriptors,
    hausdorff_distance,
    moment_distance,
    normalize_polygon,
    turning_function,
    turning_function_distance,
)


def boundary(kind, *, size=0.5, rotation=0.0, center=(0.5, 0.5), samples=64):
    return ShapeSpec(
        kind=kind, center=center, size=size, color=(0.5, 0.5, 0.5), rotation=rotation
    ).boundary(samples)


CIRCLE = boundary("circle")
SQUARE = boundary("square")
TRIANGLE = boundary("triangle")


# ----------------------------------------------------------------------
# normalize_polygon
# ----------------------------------------------------------------------
def test_normalize_centers_and_scales():
    normalized = normalize_polygon(SQUARE)
    assert np.allclose(normalized.mean(axis=0), 0.0, atol=1e-9)
    rms = math.sqrt(float(np.mean(np.sum(normalized**2, axis=1))))
    assert rms == pytest.approx(1.0)


def test_normalize_rejects_degenerate():
    with pytest.raises(IndexError_):
        normalize_polygon(np.zeros((5, 2)))
    with pytest.raises(IndexError_):
        normalize_polygon(np.zeros((2, 2)))


# ----------------------------------------------------------------------
# Turning function
# ----------------------------------------------------------------------
def test_turning_function_of_convex_shape_is_monotone():
    tf = turning_function(SQUARE)
    assert all(b >= a - 1e-9 for a, b in zip(tf, tf[1:]))
    assert tf[-1] <= 2 * math.pi + 1e-6


def test_turning_distance_identity():
    assert turning_function_distance(SQUARE, SQUARE) == pytest.approx(0.0, abs=1e-9)


def test_turning_distance_translation_and_scale_invariant():
    moved = boundary("square", size=0.2, center=(0.2, 0.8))
    assert turning_function_distance(SQUARE, moved) == pytest.approx(0.0, abs=1e-6)


def test_turning_distance_rotation_invariant():
    rotated = boundary("square", rotation=0.6)
    assert turning_function_distance(SQUARE, rotated) < 0.12


def test_turning_distance_discriminates_kinds():
    like = turning_function_distance(SQUARE, boundary("square", rotation=0.3))
    unlike = turning_function_distance(SQUARE, CIRCLE)
    assert unlike > 3 * like


def test_turning_distance_symmetric():
    assert turning_function_distance(SQUARE, TRIANGLE) == pytest.approx(
        turning_function_distance(TRIANGLE, SQUARE), abs=1e-9
    )


# ----------------------------------------------------------------------
# Hausdorff
# ----------------------------------------------------------------------
def test_hausdorff_identity_and_symmetry():
    assert hausdorff_distance(SQUARE, SQUARE) == 0.0
    assert hausdorff_distance(SQUARE, CIRCLE) == pytest.approx(
        hausdorff_distance(CIRCLE, SQUARE)
    )


def test_hausdorff_known_value():
    a = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
    b = a + np.array([0.0, 2.0])
    assert hausdorff_distance(a, b) == pytest.approx(2.0)


def test_hausdorff_is_translation_sensitive_until_normalized():
    moved = boundary("square", center=(0.1, 0.1))
    raw = hausdorff_distance(SQUARE, moved)
    normalized = hausdorff_distance(
        normalize_polygon(SQUARE), normalize_polygon(moved)
    )
    assert raw > 0.1
    assert normalized == pytest.approx(0.0, abs=1e-6)


# ----------------------------------------------------------------------
# Moments
# ----------------------------------------------------------------------
def mask(kind, rotation=0.0, size=0.5, center=(0.5, 0.5)):
    return ShapeSpec(
        kind=kind, center=center, size=size, color=(0, 0, 0), rotation=rotation
    ).mask(64)


def test_moment_distance_identity():
    assert moment_distance(mask("circle"), mask("circle")) == 0.0


def test_moment_distance_invariant_to_pose():
    reference = mask("triangle")
    transformed = mask("triangle", rotation=1.0, size=0.4, center=(0.4, 0.6))
    reference_vs_other = moment_distance(reference, mask("circle"))
    reference_vs_same = moment_distance(reference, transformed)
    assert reference_vs_same < reference_vs_other


def test_moment_distance_empty_mask_rejected():
    with pytest.raises(IndexError_):
        moment_distance(np.zeros((8, 8), dtype=bool), mask("circle"))


# ----------------------------------------------------------------------
# Fourier descriptors
# ----------------------------------------------------------------------
def test_fourier_descriptors_shape():
    fd = fourier_descriptors(CIRCLE, coefficients=8)
    assert fd.shape == (16,)


def test_fourier_distance_identity_and_invariance():
    assert fourier_descriptor_distance(CIRCLE, CIRCLE) == pytest.approx(0.0)
    moved = boundary("circle", size=0.2, center=(0.3, 0.3))
    assert fourier_descriptor_distance(CIRCLE, moved) == pytest.approx(0.0, abs=1e-9)


def test_fourier_distance_discriminates():
    same = fourier_descriptor_distance(SQUARE, boundary("square", rotation=0.5))
    different = fourier_descriptor_distance(SQUARE, TRIANGLE)
    assert different > same


def test_registry_contains_all_methods():
    assert set(SHAPE_DISTANCES) == {"turning", "hausdorff", "fourier", "dtw"}
    for method in SHAPE_DISTANCES.values():
        assert method(SQUARE, SQUARE) == pytest.approx(0.0, abs=1e-9)


# ----------------------------------------------------------------------
# Dynamic time warping (the [MKC+91] citation)
# ----------------------------------------------------------------------
def test_dtw_identity_and_symmetry():
    from repro.multimedia.shape import dtw_distance

    assert dtw_distance([1, 2, 3], [1, 2, 3]) == 0.0
    a, b = [0.0, 0.5, 1.0, 0.5], [0.0, 1.0, 0.5, 0.0]
    assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))


def test_dtw_tolerates_local_stretching():
    from repro.multimedia.shape import dtw_distance

    base = [0, 0, 1, 1, 0, 0]
    stretched = [0, 0, 0, 1, 1, 1, 0, 0]
    rigid = float(np.linalg.norm(np.array(base) - np.array(stretched[:6])))
    assert dtw_distance(base, stretched) < rigid


def test_dtw_validates_input():
    from repro.multimedia.shape import dtw_distance

    with pytest.raises(IndexError_):
        dtw_distance([], [1.0])


def test_dtw_turning_distance_invariances():
    from repro.multimedia.shape import dtw_turning_distance

    assert dtw_turning_distance(SQUARE, SQUARE) == pytest.approx(0.0, abs=1e-9)
    rotated = boundary("square", rotation=0.7, size=0.3, center=(0.4, 0.6))
    assert dtw_turning_distance(SQUARE, rotated) == pytest.approx(0.0, abs=0.05)


def test_dtw_turning_distance_discriminates():
    from repro.multimedia.shape import dtw_turning_distance

    same = dtw_turning_distance(SQUARE, boundary("square", rotation=0.3))
    different = dtw_turning_distance(SQUARE, CIRCLE)
    assert different > 3 * same + 0.05


def test_dtw_registered_in_catalog():
    assert "dtw" in SHAPE_DISTANCES
