"""Precomputed pairwise distances: lookups match live evaluation."""

import pytest

from repro.errors import UnknownObjectError
from repro.multimedia.histogram import Palette, QuadraticFormDistance
from repro.multimedia.images import ImageGenerator
from repro.multimedia.precompute import PairwiseDistanceCache
from repro.multimedia.similarity import laplacian_similarity
from repro.workloads.image_corpus import corpus_histograms


@pytest.fixture(scope="module")
def setup():
    palette = Palette.rgb_cube(3)
    distance = QuadraticFormDistance(laplacian_similarity(palette))
    corpus = ImageGenerator(2).corpus(30)
    histograms = corpus_histograms(corpus, palette)
    cache = PairwiseDistanceCache(histograms, distance)
    return distance, histograms, cache


def test_cached_distances_match_live_evaluation(setup):
    distance, histograms, cache = setup
    ids = list(histograms)
    for a, b in zip(ids[:6], ids[6:12]):
        assert cache.distance_between(a, b) == pytest.approx(
            distance(histograms[a], histograms[b]), abs=1e-9
        )


def test_self_distance_is_zero(setup):
    _, histograms, cache = setup
    anchor = next(iter(histograms))
    assert cache.distance_between(anchor, anchor) == pytest.approx(0.0, abs=1e-9)


def test_neighbors_are_sorted_and_exclude_anchor(setup):
    _, histograms, cache = setup
    anchor = next(iter(histograms))
    neighbors = cache.neighbors(anchor, 5)
    assert len(neighbors) == 5
    assert anchor not in [obj for obj, _ in neighbors]
    distances = [d for _, d in neighbors]
    assert distances == sorted(distances)


def test_neighbors_match_brute_force(setup):
    distance, histograms, cache = setup
    anchor = next(iter(histograms))
    brute = sorted(
        (distance(histograms[anchor], h), str(obj))
        for obj, h in histograms.items()
        if obj != anchor
    )[:5]
    cached = cache.neighbors(anchor, 5)
    assert [d for d, _ in brute] == pytest.approx([d for _, d in cached], abs=1e-9)


def test_ranked_list_is_a_graded_set_anchored_at_one(setup):
    _, histograms, cache = setup
    anchor = next(iter(histograms))
    graded = cache.ranked_list(anchor)
    assert graded.best().object_id == anchor
    assert graded.best().grade == pytest.approx(1.0)
    assert len(graded) == len(histograms)


def test_build_cost_is_all_pairs_and_queries_are_free(setup):
    _, histograms, cache = setup
    n = len(histograms)
    assert cache.build_evaluations == n * (n - 1) // 2
    cache.neighbors(next(iter(histograms)), 3)
    assert cache.query_evaluations == 0


def test_unknown_anchor_raises(setup):
    _, _, cache = setup
    with pytest.raises(UnknownObjectError):
        cache.neighbors("ghost", 3)
    with pytest.raises(ValueError):
        cache.neighbors(next(iter(cache._ids)), 0)
