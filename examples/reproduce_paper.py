"""Regenerate every experiment table (E1-E20) in one run.

This is the script behind EXPERIMENTS.md: it runs the full experiment
index from DESIGN.md and prints each table with its reproduction notes.
Expect a few minutes of wall-clock time.

Run:  python examples/reproduce_paper.py [--quick]
"""

import sys
import time

from repro.harness import (
    e1_cost_vs_n,
    e2_cost_vs_m,
    e3_cost_vs_k,
    e4_disjunction,
    e5_scoring_functions,
    e6_beatles,
    e7_filter,
    e8_weighted,
    e9_adversary,
    e10_uniqueness,
    e11_precompute,
    e12_cost_model_ablation,
    e12_ta_ablation,
    e13_curse,
    e14_filter_condition,
    e15_batching,
    e16_pruning,
    e17_concentration,
    e18_resumption,
    e19_bulk_access,
    e20_resilience,
)
from repro.harness.reporting import format_table

FULL = (
    ("E1  — A0 cost vs N (sqrt law)", lambda: e1_cost_vs_n()),
    ("E2  — exponent vs m", lambda: e2_cost_vs_m()),
    ("E3  — cost vs k", lambda: e3_cost_vs_k()),
    ("E4  — disjunction m*k", lambda: e4_disjunction()),
    ("E5  — scoring catalog", lambda: e5_scoring_functions()),
    ("E6  — Boolean-first (Beatles)", lambda: e6_beatles()),
    ("E7  — distance-bounding filter", lambda: e7_filter()),
    ("E8  — weighted queries", lambda: e8_weighted()),
    ("E9  — adversarial linear bound", lambda: e9_adversary()),
    ("E10 — min/max uniqueness", lambda: e10_uniqueness()),
    ("E11 — precomputed distances", lambda: e11_precompute()),
    ("E12 — TA/NRA ablation", lambda: e12_ta_ablation()),
    ("E12b — cost-measure robustness", lambda: e12_cost_model_ablation()),
    ("E13 — dimensionality curse", lambda: e13_curse()),
    ("E14 — filter-condition simulation", lambda: e14_filter_condition()),
    ("E15 — batched sorted access", lambda: e15_batching()),
    ("E16 — A0 random-access pruning", lambda: e16_pruning()),
    ("E17 — cost concentration (w.h.p.)", lambda: e17_concentration()),
    ("E18 — resumption amortization", lambda: e18_resumption()),
    ("E19 — bulk access (columnar vs per-item)", lambda: e19_bulk_access()),
    ("E20 — resilience (retries, NRA fallback ablation)", lambda: e20_resilience()),
)

QUICK = (
    ("E1  — A0 cost vs N (sqrt law)",
     lambda: e1_cost_vs_n(ns=(1000, 2000, 4000), seeds=(0,))),
    ("E4  — disjunction m*k", lambda: e4_disjunction(ns=(1000, 4000), ms=(2,))),
    ("E9  — adversarial linear bound",
     lambda: e9_adversary(ns=(1000, 2000, 4000))),
    ("E10 — min/max uniqueness", lambda: e10_uniqueness()),
)


def main() -> None:
    suite = QUICK if "--quick" in sys.argv else FULL
    for title, runner in suite:
        start = time.time()
        result = runner()
        elapsed = time.time() - start
        print(f"\n{'=' * 72}\n{title}   [{elapsed:.1f}s]\n{'=' * 72}")
        print(format_table(result.headers, result.rows))
        for note in result.notes:
            print(f"  * {note}")


if __name__ == "__main__":
    main()
