"""The paper's running example: a store that sells compact disks.

A relational subsystem answers Artist='Beatles' with a crisp set; a
multimedia subsystem grades album covers by closeness to a query color.
The middleware combines them — including via the SQL-like front end with
STOP AFTER and WEIGHT clauses.

Run:  python examples/cd_store.py
"""

from repro.core.query import Atomic, Weighted
from repro.sql.compiler import execute
from repro.workloads.cd_store import build_store, generate_catalog


def main() -> None:
    catalog = generate_catalog(2000, seed=7, beatles_fraction=0.02)
    engine = build_store(catalog)
    by_id = {album.album_id: album for album in catalog}

    print("=== (Artist='Beatles') AND (AlbumColor='red') ===")
    query = Atomic("Artist", "Beatles") & Atomic("AlbumColor", "red")
    plan = engine.explain(query, 5)
    print(f"  plan: {plan.strategy.value} — {plan.reason}")
    result = engine.top_k(query, 5)
    for item in result.answers:
        album = by_id[item.object_id]
        print(f"  {album.title!r} by {album.artist} "
              f"(cover RGB {tuple(round(c, 2) for c in album.cover_color)}) "
              f"-> grade {item.grade:.3f}")
    print(f"  cost: {result.database_access_cost} accesses "
          f"(naive would pay {2 * len(catalog)})")

    print("\n=== The same query in SQL form ===")
    sql = ("SELECT * FROM albums WHERE Artist = 'Beatles' "
           "AND AlbumColor = 'red' STOP AFTER 3")
    print(f"  {sql}")
    for item in execute(sql, engine).answers:
        print(f"  {by_id[item.object_id].title!r} -> {item.grade:.3f}")

    print("\n=== Disjunction: red OR blue covers (m*k algorithm) ===")
    either = engine.top_k(
        Atomic("AlbumColor", "red") | Atomic("AlbumColor", "blue"), 5
    )
    print(f"  algorithm: {either.algorithm}, cost {either.database_access_cost}")

    print("\n=== Caring twice as much about red as blue (section 5) ===")
    weighted = Weighted(
        (Atomic("AlbumColor", "red"), Atomic("AlbumColor", "blue")),
        (2 / 3, 1 / 3),
    )
    for item in engine.top_k(weighted, 5).answers:
        album = by_id[item.object_id]
        print(f"  {album.title!r} "
              f"(RGB {tuple(round(c, 2) for c in album.cover_color)}) "
              f"-> {item.grade:.3f}")


if __name__ == "__main__":
    main()
