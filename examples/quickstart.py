"""Quickstart: fuzzy top-k queries over ranked lists in five minutes.

Builds two graded lists (the paper's Color='red' and Shape='round'
subqueries), runs Fagin's algorithm and its rivals, and shows the access
costs the paper's theorems are about.

Run:  python examples/quickstart.py
"""

from repro import (
    FaginAlgorithm,
    disjunction_top_k,
    fagin_top_k,
    naive_top_k,
    scoring,
    sources_from_columns,
    threshold_top_k,
    top_k,
)
from repro.workloads.graded_lists import independent


def main() -> None:
    # A database of 5000 objects graded by two independent subsystems.
    table = independent(5000, 2, seed=42)
    names = ("Color=red", "Shape=round")

    print("=== Fagin's algorithm A0 (min rule, top 5) ===")
    sources = sources_from_columns(table, names)
    result = fagin_top_k(sources, scoring.MIN, 5)
    for item in result.answers:
        print(f"  {item.object_id}: grade {item.grade:.4f}")
    print(f"  cost: {result.cost} (database size 5000)")

    print("\n=== The naive baseline pays m * N ===")
    naive = naive_top_k(sources_from_columns(table, names), scoring.MIN, 5)
    print(f"  naive cost:  {naive.database_access_cost}")
    print(f"  A0 cost:     {result.database_access_cost}")
    print(f"  speedup:     {naive.database_access_cost / result.database_access_cost:.1f}x")

    print("\n=== TA, the refined version ===")
    ta = threshold_top_k(sources_from_columns(table, names), scoring.MIN, 5)
    print(f"  TA cost: {ta.database_access_cost}, "
          f"same answers: {ta.answers.same_grade_multiset(result.answers)}")

    print("\n=== Disjunction (max rule) costs m * k, independent of N ===")
    dis = disjunction_top_k(sources_from_columns(table, names), 5)
    print(f"  cost: {dis.database_access_cost} (= 2 * 5)")

    print("\n=== Or just let the planner choose ===")
    planned = top_k(sources_from_columns(table, names), scoring.MIN, 5)
    print(f"  planner picked: {planned.algorithm}, cost {planned.database_access_cost}")

    print("\n=== 'Continue where we left off' (section 4.1) ===")
    algorithm = FaginAlgorithm(sources_from_columns(table, names), scoring.MIN)
    first = algorithm.next_k(5)
    second = algorithm.next_k(5)
    print(f"  first batch:  {[i.object_id for i in first.answers]}")
    print(f"  second batch: {[i.object_id for i in second.answers]} "
          f"(cost only {second.database_access_cost})")


if __name__ == "__main__":
    main()
