"""Content-based image search: the QBIC scenario (sections 2 and 4).

Generates a synthetic image corpus, then demonstrates the full
multimedia stack: color-histogram queries (Eq. 1), the distance-bounding
filter (Eq. 2), query-by-example, combined color+shape queries, the
precomputed distance cache, and the Advertisements/AdPhotos promotion
of section 4.2.

Run:  python examples/image_search.py
"""

from repro.core.query import Atomic
from repro.middleware.complex_objects import PromotedSource
from repro.multimedia.filter import DistanceBoundingFilter
from repro.multimedia.histogram import (
    Palette,
    QuadraticFormDistance,
    solid_color_histogram,
)
from repro.multimedia.precompute import PairwiseDistanceCache
from repro.multimedia.qbic import QbicSubsystem
from repro.multimedia.similarity import laplacian_similarity
from repro.workloads.image_corpus import (
    advertisements_scenario,
    build_image_database,
    corpus_histograms,
    mixed_corpus,
)


def main() -> None:
    corpus = mixed_corpus(300, seed=3, theme="red", themed_fraction=0.2)
    qbic = QbicSubsystem("qbic", corpus)

    print("=== Top 5 images for Color='red' (Eq. 1 histogram distance) ===")
    color = qbic.bind(Atomic("Color", "red"))
    cursor = color.cursor()
    for _ in range(5):
        item = cursor.next()
        print(f"  {item.object_id}: grade {item.grade:.3f}")

    print("\n=== Query by example: images similar to the best match ===")
    anchor = color.as_graded_set().best().object_id
    like = qbic.bind(Atomic("Color", anchor)).as_graded_set()
    for item in like.top(4):
        print(f"  {item.object_id}: grade {item.grade:.3f}")

    print("\n=== Color='red' AND Shape='round' through the middleware ===")
    engine = build_image_database(120, seed=5)
    result = engine.top_k(Atomic("Color", "red") & Atomic("Shape", "round"), 5)
    print(f"  algorithm {result.algorithm}, cost {result.database_access_cost}")
    for item in result.answers:
        print(f"  {item.object_id}: grade {item.grade:.3f}")

    print("\n=== The distance-bounding filter (Eq. 2) ===")
    palette = Palette.rgb_cube(4)
    distance = QuadraticFormDistance(laplacian_similarity(palette))
    filt = DistanceBoundingFilter(palette, distance)
    histograms = corpus_histograms(corpus, palette)
    target = solid_color_histogram((0.9, 0.1, 0.1), palette)
    search = filt.search(histograms, target, 10)
    print(f"  corpus {len(histograms)}: {search.full_evaluations} Eq.1 "
          f"evaluations, {search.pruned} pruned "
          f"({search.pruning_rate:.0%}), zero false dismissals")

    print("\n=== Precomputed pairwise distances (section 2.1) ===")
    cache = PairwiseDistanceCache(histograms, distance)
    neighbors = cache.neighbors(anchor, 3)
    print(f"  built with {cache.build_evaluations} Eq.1 evaluations; "
          f"queries are now lookups:")
    for object_id, d in neighbors:
        print(f"  {object_id}: distance {d:.3f}")

    print("\n=== Advertisements with a red AdPhoto (section 4.2) ===")
    photos, containment = advertisements_scenario(30, photos_per_ad=3, seed=9)
    photo_qbic = QbicSubsystem("photos", photos)
    promoted = PromotedSource(photo_qbic.bind(Atomic("Color", "red")), containment)
    ad_cursor = promoted.cursor()
    for _ in range(5):
        item = ad_cursor.next()
        kids = containment.children_of(item.object_id)
        print(f"  {item.object_id} (photos {', '.join(kids)}): "
              f"grade {item.grade:.3f}")
    shared = containment.shared_children()
    if shared:
        print(f"  ({len(shared)} photos are shared between ads — handled)")


if __name__ == "__main__":
    main()
