"""User preference weighting: the sliders of section 5.

"The user might be interested in objects that are both red and round,
but care more about the color than the shape."  This example sweeps the
color/shape weighting from all-shape to all-color and shows how the
Fagin–Wimmers formula reranks the answers, plus live checks of the
desiderata D1–D3'.

Run:  python examples/weighted_preferences.py
"""

from repro.core.fagin import fagin_top_k
from repro.core.sources import sources_from_columns
from repro.scoring import tnorms
from repro.scoring.properties import check_local_linearity
from repro.scoring.weighted import WeightedScoring, weighted_score
from repro.workloads.graded_lists import anti_correlated


def main() -> None:
    # Anti-correlated grades make the weighting matter: every object is
    # good at one attribute, so the slider decides who wins.
    table = anti_correlated(800, 2, seed=4)
    names = ("Color=red", "Shape=round")

    print("=== Sweeping the color weight (slider) ===")
    print(f"{'color weight':>14}  top-3 objects (overall grades)")
    for color_weight in (0.0, 0.25, 0.5, 0.75, 1.0):
        theta = (color_weight, 1.0 - color_weight)
        rule = WeightedScoring(tnorms.MIN, theta)
        sources = sources_from_columns(table, names)
        result = fagin_top_k(sources, rule, 3)
        summary = ", ".join(
            f"{item.object_id}({item.grade:.2f})" for item in result.answers
        )
        print(f"{color_weight:>14.2f}  {summary}")

    print("\n=== Desideratum D1: equal weights = the unweighted rule ===")
    grades = (0.8, 0.3)
    print(f"  f_(0.5,0.5){grades} = "
          f"{weighted_score(tnorms.MIN, (0.5, 0.5), grades):.3f}"
          f"  vs  min{grades} = {min(grades):.3f}")

    print("\n=== Desideratum D2: zero-weight arguments drop out ===")
    print(f"  f_(0.6,0.4,0.0)(0.8, 0.3, 0.999) = "
          f"{weighted_score(tnorms.MIN, (0.6, 0.4, 0.0), (0.8, 0.3, 0.999)):.3f}"
          f"  vs  f_(0.6,0.4)(0.8, 0.3) = "
          f"{weighted_score(tnorms.MIN, (0.6, 0.4), (0.8, 0.3)):.3f}")

    print("\n=== Desideratum D3': local linearity (randomized check) ===")
    report = check_local_linearity(tnorms.MIN, arity=3, trials=500)
    print(f"  holds on 500 random mixtures: {bool(report)}")

    print("\n=== 'Twice as much about color as shape' (the paper's example) ===")
    theta = (2 / 3, 1 / 3)
    x = (0.9, 0.6)
    value = weighted_score(tnorms.MIN, theta, x)
    print(f"  Theta = (2/3, 1/3), grades {x}:")
    print(f"  (1/3)*min(0.9) + (2/3)*min(0.9, 0.6) = {value:.4f}")


if __name__ == "__main__":
    main()
