"""Video search: the paper's "images and video", video half.

Generates a corpus of short synthetic clips (animated shape scenes),
then runs content-based video queries through the same middleware stack
as everything else: color signatures, motion energy, and fuzzy
combinations of both.

Run:  python examples/video_search.py
"""

from repro.core.query import Atomic, Weighted
from repro.middleware.engine import MiddlewareEngine
from repro.multimedia.video import VideoGenerator, VideoSubsystem, motion_energy


def main() -> None:
    generator = VideoGenerator(11)
    clips = generator.corpus(60, still_fraction=0.3)
    subsystem = VideoSubsystem("video", clips)
    engine = MiddlewareEngine()
    engine.register(subsystem)
    by_id = {clip.clip_id: clip for clip in clips}

    print("=== Top 5 clips for MotionEnergy='fast' ===")
    result = engine.top_k(Atomic("MotionEnergy", "fast"), 5)
    for item in result.answers:
        clip = by_id[item.object_id]
        print(f"  {item.object_id}: grade {item.grade:.3f} "
              f"(measured energy {subsystem.motion_of(item.object_id):.2f}, "
              f"{len(clip.base.shapes)} moving shapes)")

    print("\n=== Red AND still: find title cards ===")
    query = Atomic("ClipColor", "red") & Atomic("MotionEnergy", "still")
    result = engine.top_k(query, 5)
    print(f"  algorithm {result.algorithm}, cost {result.database_access_cost}")
    for item in result.answers:
        print(f"  {item.object_id}: grade {item.grade:.3f}")

    print("\n=== Caring 3x more about motion than color (section 5) ===")
    weighted = Weighted(
        (Atomic("MotionEnergy", "fast"), Atomic("ClipColor", "blue")),
        (0.75, 0.25),
    )
    for item in engine.top_k(weighted, 5).answers:
        print(f"  {item.object_id}: grade {item.grade:.3f}")

    print("\n=== Query by example: clips like the fastest one ===")
    fastest = max(clips, key=lambda c: motion_energy(c))
    like = engine.top_k(Atomic("ClipColor", fastest.clip_id), 4)
    for item in like.answers:
        marker = " (the example itself)" if item.object_id == fastest.clip_id else ""
        print(f"  {item.object_id}: grade {item.grade:.3f}{marker}")


if __name__ == "__main__":
    main()
